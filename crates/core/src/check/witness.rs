//! Executable witnesses for analyzer findings.
//!
//! A diagnostic is a *claim* about runtime behavior: a race claims the two
//! sites can execute in either order with different results; a deadlock
//! claims no executor schedule completes the program. This module turns
//! claims into **schedules a differential harness can run**:
//!
//! * for a [`CheckCode::Race`], two happens-before-consistent total orders
//!   of the program's actions — one executing the racing pair `a` before
//!   `b`, one `b` before `a`. Replaying both through a reference
//!   interpreter (see [`testutil::RefExec`](crate::testutil::RefExec)) and
//!   comparing states demonstrates the race is observable (or that it is
//!   benign — e.g. both orders write identical bits);
//! * for a [`CheckCode::DeadlockCycle`], the witness cycle of sites from
//!   the happens-before graph — a FIFO interpretation must wedge with its
//!   blocked frontier on that cycle;
//! * everything else (unknown references, self-waits, placement lints) is
//!   [`WitnessKind::Structural`]: the program cannot run at all, so there
//!   is no schedule to exhibit — validation or installation refuses it.
//!
//! Witness schedules are deterministic: the constrained topological sort
//! always picks the smallest ready node, so the same program and
//! diagnostic produce byte-identical orders.

use crate::program::Program;

use super::diagnostics::{CheckClass, CheckCode, Diagnostic, Site};
use super::hb::HbEdges;

/// What kind of runtime behavior a witness demonstrates.
#[derive(Clone, Debug)]
pub enum WitnessKind {
    /// No schedule completes: the sites form a wait cycle. A FIFO
    /// interpretation of the program must get stuck.
    Deadlock {
        /// The cycle's action sites, in causal order.
        cycle: Vec<Site>,
    },
    /// Both orders of the racing pair are consistent with happens-before;
    /// executing them may produce different states.
    Race {
        /// The diagnostic's primary site.
        a: Site,
        /// Its race partner (first related site).
        b: Site,
        /// A linear extension executing `a` before `b`. On a cyclic graph
        /// the order is partial (it stops at the cycle).
        order_ab: Vec<Site>,
        /// A linear extension executing `b` before `a`.
        order_ba: Vec<Site>,
    },
    /// The program is structurally unrunnable (unknown event or buffer,
    /// self-wait, out-of-range placement): the witness is the refusal
    /// itself, not a schedule.
    Structural,
}

/// One analyzer claim made executable. Produced by
/// [`Analysis::witness`](super::Analysis::witness).
#[derive(Clone, Debug)]
pub struct HazardWitness {
    /// The rule whose claim this witnesses.
    pub code: CheckCode,
    /// The diagnostic's primary site.
    pub site: Site,
    /// The executable demonstration.
    pub kind: WitnessKind,
}

impl HazardWitness {
    /// The hazard class this witness demonstrates, for class-level
    /// comparisons against executor outcomes.
    pub fn class(&self) -> CheckClass {
        self.code.class()
    }
}

/// Build the witness for `diag` over `program` (see the [module
/// docs](self)). `cycle` is the happens-before graph's witness cycle, if
/// the graph was cyclic.
pub(super) fn witness(
    program: &Program,
    cycle: Option<&[Site]>,
    diag: &Diagnostic,
) -> HazardWitness {
    let kind = match diag.code {
        CheckCode::DeadlockCycle => WitnessKind::Deadlock {
            cycle: cycle.map_or_else(
                || {
                    // The graph was rebuilt acyclic (shouldn't happen for a
                    // live diagnostic) — fall back to the diagnostic's
                    // recorded hops.
                    let mut c = vec![diag.site];
                    c.extend(diag.related.iter().copied());
                    c
                },
                <[Site]>::to_vec,
            ),
        },
        CheckCode::Race => match diag.related.first().copied() {
            Some(b) => {
                let a = diag.site;
                WitnessKind::Race {
                    a,
                    b,
                    order_ab: linear_extension(program, b),
                    order_ba: linear_extension(program, a),
                }
            }
            // A race claim without a partner site names no pair to
            // schedule (the analyzer never emits one, but hand-built
            // diagnostics may): there is nothing executable to show.
            None => WitnessKind::Structural,
        },
        _ => WitnessKind::Structural,
    };
    HazardWitness {
        code: diag.code,
        site: diag.site,
        kind,
    }
}

/// A happens-before-consistent total order over the program's actions
/// that schedules `delayed` as late as possible: a Kahn topological sort
/// that only emits `delayed`'s node when it is the sole ready node.
///
/// For any site `x` *concurrent* with `delayed`, this guarantees `x`
/// executes first — if `delayed` were ever the only ready node while `x`
/// was still pending, `x` would transitively depend on `delayed`,
/// contradicting concurrency. Ties among other ready nodes break to the
/// smallest node id, so the order is deterministic.
///
/// On a cyclic graph the sort stalls at the cycle and the order is
/// partial — callers pair this with the deadlock witness instead.
fn linear_extension(program: &Program, delayed: Site) -> Vec<Site> {
    let edges = HbEdges::build(program);
    let delayed_node = edges.node_of(delayed);

    let mut indeg: Vec<u32> = vec![0; edges.nodes];
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); edges.nodes];
    for (v, ps) in edges.preds.iter().enumerate() {
        indeg[v] = ps.len() as u32;
        for &p in ps {
            succs[p as usize].push(v as u32);
        }
    }

    let mut ready: std::collections::BTreeSet<usize> =
        (0..edges.nodes).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(edges.total_actions);
    while !ready.is_empty() {
        // Smallest ready node that is not the delayed one; the delayed
        // node only when nothing else can run.
        let v = ready
            .iter()
            .copied()
            .find(|&v| v != delayed_node)
            .unwrap_or(delayed_node);
        ready.remove(&v);
        if let Some(site) = edges.site_of(v) {
            order.push(site);
        }
        for &w in &succs[v] {
            let w = w as usize;
            indeg[w] -= 1;
            if indeg[w] == 0 {
                ready.insert(w);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{analyze, CheckEnv};
    use crate::testutil::{build_synced, drop_one_wait, mix_kernel, stream_skeleton, RefExec};
    use crate::types::BufId;

    fn first_error(program: &Program) -> (crate::check::Analysis, crate::check::Diagnostic) {
        let env = CheckEnv::permissive(program);
        let a = analyze(program, &env);
        let d = a.report.errors().next().expect("an error finding").clone();
        (a, d)
    }

    #[test]
    fn race_witness_orders_execute_the_pair_both_ways() {
        // Two unordered writers of one buffer.
        let mut p = stream_skeleton(2, 2);
        p.streams[0]
            .actions
            .push(crate::action::Action::Kernel(mix_kernel(
                "w0",
                [],
                [BufId(0)],
                1.0,
            )));
        p.streams[1]
            .actions
            .push(crate::action::Action::Kernel(mix_kernel(
                "w1",
                [],
                [BufId(0)],
                1.0,
            )));
        let (analysis, diag) = first_error(&p);
        assert_eq!(diag.code, CheckCode::Race);
        let w = analysis.witness(&p, &diag);
        let WitnessKind::Race {
            a,
            b,
            order_ab,
            order_ba,
        } = &w.kind
        else {
            panic!("race witness expected, got {:?}", w.kind);
        };
        // Both orders are total and put the pair in opposite orders.
        assert_eq!(order_ab.len(), p.action_count());
        assert_eq!(order_ba.len(), p.action_count());
        let pos = |order: &[Site], s: &Site| order.iter().position(|x| x == s).unwrap();
        assert!(pos(order_ab, a) < pos(order_ab, b));
        assert!(pos(order_ba, b) < pos(order_ba, a));
        // Executing them diverges: the race is observable.
        let lens = vec![4usize];
        let sab = RefExec::run_order(&p, &lens, order_ab);
        let sba = RefExec::run_order(&p, &lens, order_ba);
        assert_ne!(sab.fingerprint(), sba.fingerprint());
    }

    #[test]
    fn dropping_a_wait_yields_a_runnable_race_or_deadlock_witness() {
        let p = build_synced(3, &[(0, 0), (1, 1), (2, 0)]);
        let broken = drop_one_wait(&p, 1);
        let env = CheckEnv::permissive(&broken);
        let analysis = analyze(&broken, &env);
        let diag = analysis.report.errors().next().expect("must not be clean");
        let w = analysis.witness(&broken, diag);
        match &w.kind {
            WitnessKind::Race {
                order_ab, order_ba, ..
            } => {
                assert_eq!(order_ab.len(), broken.action_count());
                assert_eq!(order_ba.len(), broken.action_count());
            }
            WitnessKind::Deadlock { cycle } => assert!(!cycle.is_empty()),
            WitnessKind::Structural => panic!("dropped wait is not structural"),
        }
    }

    #[test]
    fn deadlock_witness_carries_the_cycle_and_fifo_wedges_on_it() {
        use crate::action::Action;
        use crate::program::EventSite;
        use crate::types::{EventId, StreamId};
        let mut p = stream_skeleton(2, 2);
        p.streams[0].actions.push(Action::WaitEvent(EventId(1)));
        p.streams[0].actions.push(Action::RecordEvent(EventId(0)));
        p.streams[1].actions.push(Action::WaitEvent(EventId(0)));
        p.streams[1].actions.push(Action::RecordEvent(EventId(1)));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        p.events.push(EventSite {
            stream: StreamId(1),
            action_index: 1,
        });
        let (analysis, diag) = first_error(&p);
        assert_eq!(diag.code, CheckCode::DeadlockCycle);
        let w = analysis.witness(&p, &diag);
        let WitnessKind::Deadlock { cycle } = &w.kind else {
            panic!("deadlock witness expected");
        };
        assert!(cycle.len() >= 2);
        // The runtime face of the claim: FIFO interpretation gets stuck,
        // and every blocked head is one of the cycle's wait sites.
        let stuck = RefExec::run_fifo(&p, &[]).expect_err("deadlock must wedge");
        assert!(!stuck.frontier.is_empty());
        for (site, _) in &stuck.frontier {
            assert!(
                cycle.contains(site),
                "blocked site {site} not on the witnessed cycle {cycle:?}"
            );
        }
    }

    #[test]
    fn structural_findings_witness_as_structural() {
        use crate::action::Action;
        use crate::types::EventId;
        let mut p = stream_skeleton(1, 1);
        p.streams[0].actions.push(Action::WaitEvent(EventId(9)));
        let (analysis, diag) = first_error(&p);
        assert_eq!(diag.code, CheckCode::UnknownEvent);
        let w = analysis.witness(&p, &diag);
        assert!(matches!(w.kind, WitnessKind::Structural));
        assert_eq!(w.class(), CheckClass::Deadlock);
    }
}
