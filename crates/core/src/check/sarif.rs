//! SARIF-style machine-readable export of a [`CheckReport`].
//!
//! Emits the subset of SARIF 2.1.0 that CI annotators consume: one run,
//! a `tool.driver` with a rule catalog, and one `result` per
//! [`Diagnostic`] with a stable logical location per site. The workspace
//! is offline (no serde), so the document is written by hand; it uses
//! only stable, deterministic content — two identical reports serialize
//! byte-identically.
//!
//! Location convention: a [`Site`] becomes the fully-qualified logical
//! name `stream/<index>/action/<index>` — the same coordinates
//! [`Program::dump`](crate::program::Program::dump) prints, and for
//! serve-merged programs the *rebased* (post-merge) coordinates.

use std::collections::BTreeSet;

use super::{CheckCode, CheckReport, Diagnostic, Severity, Site};

/// SARIF severity level for a code.
fn level(code: CheckCode) -> &'static str {
    match code.severity() {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// Stable logical path of a site.
fn logical(site: Site) -> String {
    format!("stream/{}/action/{}", site.stream.0, site.action_index)
}

/// Minimal JSON string escape (the messages only contain printable
/// ASCII, but escape defensively).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn location(site: Site) -> String {
    format!(
        "{{\"logicalLocations\":[{{\"fullyQualifiedName\":\"{}\"}}]}}",
        logical(site)
    )
}

fn result(d: &Diagnostic) -> String {
    let mut s = format!(
        "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{}]",
        d.code.name(),
        level(d.code),
        escape(&d.message),
        location(d.site)
    );
    if !d.related.is_empty() {
        let related: Vec<String> = d.related.iter().map(|&r| location(r)).collect();
        s.push_str(&format!(",\"relatedLocations\":[{}]", related.join(",")));
    }
    s.push('}');
    s
}

/// Serialize `report` as a SARIF 2.1.0 document. The rule catalog lists
/// exactly the codes that fired, sorted by name; results keep the
/// report's canonical order (errors first, then by site).
#[must_use]
pub fn to_sarif(report: &CheckReport) -> String {
    let rules: BTreeSet<&'static str> = report.diagnostics.iter().map(|d| d.code.name()).collect();
    let rules: Vec<String> = rules
        .into_iter()
        .map(|name| format!("{{\"id\":\"{name}\"}}"))
        .collect();
    let results: Vec<String> = report.diagnostics.iter().map(result).collect();
    format!(
        "{{\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"stream-check\",\
         \"rules\":[{}]}}}},\"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CheckClass;

    fn sample() -> CheckReport {
        let mut r = CheckReport::default();
        r.push(Diagnostic {
            code: CheckCode::Race,
            site: Site::new(1, 3),
            related: vec![Site::new(0, 2)],
            message: "conflicting write of \"b0\"".to_string(),
        });
        r.push(Diagnostic {
            code: CheckCode::DeadEvent,
            site: Site::new(0, 5),
            related: Vec::new(),
            message: "event e2 is never awaited".to_string(),
        });
        r.finish();
        r
    }

    #[test]
    fn export_is_deterministic_and_escaped() {
        let r = sample();
        let a = to_sarif(&r);
        let b = to_sarif(&r);
        assert_eq!(a, b);
        assert!(a.contains("\"ruleId\":\"race\""));
        assert!(a.contains("stream/1/action/3"));
        assert!(a.contains("\\\"b0\\\""), "quotes escaped: {a}");
        assert!(a.contains("\"level\":\"error\""));
        assert!(a.contains("\"level\":\"warning\""));
    }

    #[test]
    fn perf_class_codes_export_as_warnings() {
        let mut r = CheckReport::default();
        r.push(Diagnostic {
            code: CheckCode::RedundantSync,
            site: Site::new(0, 0),
            related: Vec::new(),
            message: "m".to_string(),
        });
        r.finish();
        assert_eq!(r.diagnostics[0].class(), CheckClass::Perf);
        let s = to_sarif(&r);
        assert!(s.contains("\"ruleId\":\"redundant-sync\""));
        assert!(s.contains("\"level\":\"warning\""));
    }
}
