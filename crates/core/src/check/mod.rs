//! Static analysis of recorded programs — `stream-check`.
//!
//! A recorded [`Program`] is an executor-independent task graph, which
//! makes it analyzable *before* anything runs: this module builds the
//! happens-before relation implied by FIFO stream order, events, and
//! barriers (`hb`), then reports typed [`Diagnostic`]s in four classes:
//!
//! * **deadlocks** — cross-stream event-wait cycles, waits on events
//!   recorded causally after the wait, self-waits, unknown events;
//! * **data races** — unordered conflicting accesses to one buffer in one
//!   memory space (host copy vs per-device instances);
//! * **dataflow** — device reads of buffers nothing produced, D2H of
//!   never-written device memory, events nobody waits on;
//! * **resource lints** — streams placed outside the plan, partition
//!   oversubscription, dangling buffer references.
//!
//! Both executors run the analyzer by default and refuse programs with
//! [`Severity::Error`] findings ([`Error::Check`](crate::types::Error));
//! see [`CheckMode`] for the opt-out knob. An analyzer-clean program
//! cannot deadlock on events or race on buffers at runtime, on either
//! executor — that is the contract the executors' schedulers rely on.
//!
//! ```
//! use hstreams::context::Context;
//! use micsim::PlatformConfig;
//!
//! let mut ctx = Context::builder(PlatformConfig::phi_31sp())
//!     .partitions(2)
//!     .build()
//!     .unwrap();
//! let a = ctx.alloc("A", 1024);
//! let (s0, s1) = (ctx.stream(0).unwrap(), ctx.stream(1).unwrap());
//! ctx.h2d(s0, a).unwrap();
//! let e = ctx.record_event(s0).unwrap();
//! ctx.wait_event(s1, e).unwrap(); // orders s1 after the upload
//! let analysis = ctx.analyze();
//! assert!(analysis.report.is_clean());
//! ```

mod deadlock;
pub mod diagnostics;
mod hb;
mod races;
mod residency;
pub mod sarif;
pub mod witness;

use std::time::Instant;

use crate::program::Program;

pub use diagnostics::{CheckClass, CheckCode, CheckReport, CheckStats, Diagnostic, Severity, Site};
pub use witness::{HazardWitness, WitnessKind};

// The scheduler module reuses the race detector's access analysis to build
// its task graph (same conflict definition, same memory-space split).
pub(crate) use hb::HbEdges;
pub use hb::HbGraph;
pub(crate) use races::{collect_accesses, Space};

/// What the executors do with analyzer findings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckMode {
    /// Analyze every program and refuse `Severity::Error` findings with
    /// [`Error::Check`](crate::types::Error) (the default).
    #[default]
    Enforce,
    /// Analyze and record the report (see
    /// [`Context::take_check_report`](crate::context::Context::take_check_report)),
    /// but run the program anyway — for deliberately-racy experiments.
    WarnOnly,
    /// Skip analysis entirely.
    Off,
}

/// The plan the program is checked against: how many buffers the context
/// allocated and what geometry the streams may legally use.
#[derive(Clone, Copy, Debug)]
pub struct CheckEnv {
    /// Allocated buffers (ids `0..buffers`).
    pub buffers: usize,
    /// Cards in the platform.
    pub devices: usize,
    /// Partitions per card.
    pub partitions: usize,
    /// Streams the plan assigns to each partition.
    pub streams_per_partition: usize,
}

impl CheckEnv {
    /// An environment inferred from the program itself: every reference
    /// and placement is in range, so only graph-derived checks (deadlock,
    /// race, dataflow) can fire. Useful for analyzing a bare [`Program`]
    /// without its context.
    pub fn permissive(program: &Program) -> CheckEnv {
        let mut buffers = 0usize;
        let mut devices = 1usize;
        let mut partitions = 1usize;
        for s in &program.streams {
            devices = devices.max(s.placement.device.0 + 1);
            partitions = partitions.max(s.placement.partition + 1);
            for a in &s.actions {
                for b in a.buffers() {
                    buffers = buffers.max(b.0 + 1);
                }
            }
        }
        CheckEnv {
            buffers,
            devices,
            partitions,
            streams_per_partition: program.streams.len().max(1),
        }
    }
}

/// Concurrency structure of an analyzed program: how many cross-stream
/// (transfer, kernel) pairs the happens-before relation leaves unordered —
/// the pairs an executor *may* overlap. Zero for the barrier-separated
/// apps (nothing to hide behind anything), positive for the overlappable
/// pipelines.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverlapSummary {
    /// Transfer actions in the program.
    pub transfers: usize,
    /// Kernel launches in the program.
    pub kernels: usize,
    /// Cross-stream (transfer, kernel) pairs with no ordering either way.
    pub concurrent_transfer_kernel_pairs: usize,
}

/// Per-site action kind retained for [`Analysis::overlap_summary`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Transfer,
    Kernel,
    Control,
}

/// The analyzer's output: the [`CheckReport`] plus the happens-before
/// relation it was derived from, kept for O(1) ordering queries.
pub struct Analysis {
    /// All findings.
    pub report: CheckReport,
    hb: hb::HbGraph,
    kinds: Vec<Vec<SiteKind>>,
}

impl Analysis {
    /// Does the action at `a` complete before the action at `b` can
    /// start, under FIFO + event + barrier ordering?
    pub fn happens_before(&self, a: Site, b: Site) -> bool {
        self.hb.happens_before(a, b)
    }

    /// Neither order holds: the executors may run `a` and `b` at the same
    /// time.
    pub fn concurrent(&self, a: Site, b: Site) -> bool {
        self.hb.concurrent(a, b)
    }

    /// Turn `diag`'s claim into an executable demonstration: witness
    /// schedules for races, the wait cycle for deadlocks, a structural
    /// refusal otherwise (see [`witness`]). `program` must
    /// be the program this analysis was built from.
    pub fn witness(&self, program: &Program, diag: &Diagnostic) -> HazardWitness {
        witness::witness(program, self.hb.cycle(), diag)
    }

    /// Count the cross-stream (transfer, kernel) pairs left unordered —
    /// the program's overlap potential. O(transfers × kernels) clock
    /// queries; meaningless on deadlocked programs (returns zero pairs).
    pub fn overlap_summary(&self) -> OverlapSummary {
        let mut sites: Vec<(Site, SiteKind)> = Vec::new();
        for (si, stream) in self.kinds.iter().enumerate() {
            for (ai, &kind) in stream.iter().enumerate() {
                if kind != SiteKind::Control {
                    sites.push((Site::new(si, ai), kind));
                }
            }
        }
        let mut summary = OverlapSummary::default();
        for (i, &(a, ka)) in sites.iter().enumerate() {
            match ka {
                SiteKind::Transfer => summary.transfers += 1,
                SiteKind::Kernel => summary.kernels += 1,
                SiteKind::Control => {}
            }
            for &(b, kb) in &sites[i + 1..] {
                let mixed = (ka == SiteKind::Transfer && kb == SiteKind::Kernel)
                    || (ka == SiteKind::Kernel && kb == SiteKind::Transfer);
                if mixed && a.stream != b.stream && self.hb.concurrent(a, b) {
                    summary.concurrent_transfer_kernel_pairs += 1;
                }
            }
        }
        summary
    }
}

/// Analyze `program` against `env`. Never fails: malformed programs come
/// back as reports full of errors, not panics.
pub fn analyze(program: &Program, env: &CheckEnv) -> Analysis {
    let start = Instant::now();
    let mut report = CheckReport::default();

    let graph = hb::HbGraph::build(program);
    deadlock::check(program, &graph, &mut report);

    let accesses = races::collect_accesses(program);
    races::check(program, &graph, &accesses, &mut report);
    residency::check_dataflow(program, &graph, &accesses, &mut report);
    residency::check_resources(program, env, &mut report);

    report.stats = CheckStats {
        actions: program.action_count(),
        hb_nodes: graph.node_count(),
        hb_edges: graph.edge_count(),
        elapsed: start.elapsed(),
    };
    report.finish();

    let kinds = program
        .streams
        .iter()
        .map(|s| {
            s.actions
                .iter()
                .map(|a| match a {
                    crate::action::Action::Transfer { .. } => SiteKind::Transfer,
                    crate::action::Action::Kernel(_) => SiteKind::Kernel,
                    _ => SiteKind::Control,
                })
                .collect()
        })
        .collect();

    Analysis {
        report,
        hb: graph,
        kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::kernel::KernelDesc;
    use crate::program::{EventSite, StreamPlacement, StreamRecord};
    use crate::types::{BufId, EventId, StreamId};
    use micsim::compute::KernelProfile;
    use micsim::device::DeviceId;
    use micsim::pcie::Direction;

    fn stream_on(id: usize, device: usize, partition: usize, actions: Vec<Action>) -> StreamRecord {
        StreamRecord {
            id: StreamId(id),
            placement: StreamPlacement {
                device: DeviceId(device),
                partition,
            },
            actions,
        }
    }

    fn stream(id: usize, actions: Vec<Action>) -> StreamRecord {
        stream_on(id, 0, id, actions)
    }

    fn h2d(buf: usize) -> Action {
        Action::Transfer {
            dir: Direction::HostToDevice,
            buf: BufId(buf),
        }
    }

    fn d2h(buf: usize) -> Action {
        Action::Transfer {
            dir: Direction::DeviceToHost,
            buf: BufId(buf),
        }
    }

    fn kernel(reads: &[usize], writes: &[usize]) -> Action {
        Action::Kernel(
            KernelDesc::simulated("k", KernelProfile::streaming("k", 1e9), 1.0)
                .reading(reads.iter().map(|&b| BufId(b)))
                .writing(writes.iter().map(|&b| BufId(b))),
        )
    }

    fn env(buffers: usize) -> CheckEnv {
        CheckEnv {
            buffers,
            devices: 2,
            partitions: 8,
            streams_per_partition: 1,
        }
    }

    // ----- class (a): deadlocks --------------------------------------------

    #[test]
    fn mutual_cross_stream_wait_reported_as_deadlock() {
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![
                Action::WaitEvent(EventId(1)),
                Action::RecordEvent(EventId(0)),
            ],
        ));
        p.streams.push(stream(
            1,
            vec![
                Action::WaitEvent(EventId(0)),
                Action::RecordEvent(EventId(1)),
            ],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        p.events.push(EventSite {
            stream: StreamId(1),
            action_index: 1,
        });
        assert!(p.validate().is_ok(), "shallow validate misses the cycle");
        let a = analyze(&p, &env(0));
        assert!(!a.report.is_clean());
        let d = a
            .report
            .in_class(CheckClass::Deadlock)
            .find(|d| d.code == CheckCode::DeadlockCycle)
            .expect("deadlock diagnostic");
        assert_eq!(d.severity(), Severity::Error);
        assert!(!d.related.is_empty(), "cycle hops attached");
    }

    #[test]
    fn self_wait_and_unknown_event_reported() {
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![
                Action::RecordEvent(EventId(0)),
                Action::WaitEvent(EventId(0)),
                Action::WaitEvent(EventId(7)),
            ],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 0,
        });
        let a = analyze(&p, &env(0));
        let codes: Vec<CheckCode> = a.report.errors().map(|d| d.code).collect();
        assert!(codes.contains(&CheckCode::SelfWait));
        assert!(codes.contains(&CheckCode::UnknownEvent));
    }

    // ----- class (b): data races -------------------------------------------

    #[test]
    fn unordered_cross_stream_write_read_is_a_race() {
        // s0 uploads b0 and b1; s1's kernel reads b0 with no event.
        let mut p = Program::default();
        p.streams.push(stream(0, vec![h2d(0), h2d(1)]));
        p.streams.push(stream(1, vec![kernel(&[0], &[1])]));
        let a = analyze(&p, &env(2));
        let races: Vec<&Diagnostic> = a.report.in_class(CheckClass::Race).collect();
        assert!(!races.is_empty());
        assert!(races.iter().all(|d| d.severity() == Severity::Error));
        // Both the read-side and the write-write conflict on b1 exist.
        assert!(races.iter().any(|d| d.message.contains("b0")));
        assert!(races.iter().any(|d| d.message.contains("b1")));
    }

    #[test]
    fn event_edge_silences_the_race() {
        let mut p = Program::default();
        p.streams
            .push(stream(0, vec![h2d(0), Action::RecordEvent(EventId(0))]));
        p.streams.push(stream(
            1,
            vec![Action::WaitEvent(EventId(0)), kernel(&[0], &[1])],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        let a = analyze(&p, &env(2));
        assert!(a.report.is_clean(), "{}", a.report.render());
    }

    #[test]
    fn host_round_trip_does_not_conflict_with_device_readers() {
        // s0: d2h b0, host kernel writes b0's host copy, h2d b0 — FIFO.
        // s1: device kernel reads b0 only after an event on the re-upload.
        let mut p = Program::default();
        let host_k = Action::Kernel(
            KernelDesc::simulated("potrf", KernelProfile::streaming("k", 1e9), 1.0)
                .writing([BufId(0)])
                .on_host(),
        );
        p.streams.push(stream(
            0,
            vec![d2h(0), host_k, h2d(0), Action::RecordEvent(EventId(0))],
        ));
        p.streams.push(stream(
            1,
            vec![Action::WaitEvent(EventId(0)), kernel(&[0], &[1])],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 3,
        });
        let a = analyze(&p, &env(2));
        // d2h of a never-written device buffer is a warning; no races.
        assert!(a.report.is_clean(), "{}", a.report.render());
        assert!(a.report.in_class(CheckClass::Race).next().is_none());
    }

    #[test]
    fn same_buffer_on_two_cards_is_not_a_race() {
        let mut p = Program::default();
        p.streams
            .push(stream_on(0, 0, 0, vec![h2d(0), kernel(&[0], &[1])]));
        p.streams
            .push(stream_on(1, 1, 0, vec![h2d(0), kernel(&[0], &[2])]));
        let a = analyze(&p, &env(3));
        assert!(
            a.report.in_class(CheckClass::Race).next().is_none(),
            "distinct device instances: {}",
            a.report.render()
        );
    }

    // ----- class (c): dataflow ---------------------------------------------

    #[test]
    fn device_read_without_producer_warns() {
        let mut p = Program::default();
        p.streams.push(stream(0, vec![kernel(&[0], &[1]), d2h(2)]));
        let a = analyze(&p, &env(3));
        assert!(a.report.is_clean(), "warnings only");
        let dataflow: Vec<&Diagnostic> = a.report.in_class(CheckClass::Dataflow).collect();
        assert!(dataflow
            .iter()
            .any(|d| d.code == CheckCode::UseBeforeProduce && d.message.contains("b0")));
        assert!(dataflow
            .iter()
            .any(|d| d.code == CheckCode::UseBeforeProduce && d.message.contains("d2h")));
    }

    #[test]
    fn produced_buffer_reads_clean_and_dead_event_warns() {
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![
                h2d(0),
                kernel(&[0], &[1]),
                Action::RecordEvent(EventId(0)),
                d2h(1),
            ],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 2,
        });
        let a = analyze(&p, &env(2));
        assert!(a
            .report
            .in_class(CheckClass::Dataflow)
            .all(|d| d.code == CheckCode::DeadEvent));
        assert_eq!(a.report.warnings().count(), 1);
    }

    #[test]
    fn unknown_buffer_is_an_error() {
        let mut p = Program::default();
        p.streams.push(stream(0, vec![h2d(9)]));
        let a = analyze(&p, &env(1));
        assert!(a
            .report
            .errors()
            .any(|d| d.code == CheckCode::UnknownBuffer));
    }

    // ----- class (d): resource lints ---------------------------------------

    #[test]
    fn out_of_range_placement_is_an_error() {
        let mut p = Program::default();
        p.streams.push(stream_on(0, 0, 99, vec![h2d(0)]));
        let a = analyze(&p, &env(1));
        let d = a
            .report
            .errors()
            .find(|d| d.code == CheckCode::PlacementOutOfRange)
            .expect("placement lint");
        assert!(d.message.contains("p99"));
    }

    #[test]
    fn oversubscribed_partition_warns() {
        let mut p = Program::default();
        p.streams.push(stream_on(0, 0, 0, vec![h2d(0)]));
        p.streams.push(stream_on(1, 0, 0, vec![h2d(1)]));
        let a = analyze(&p, &env(2));
        assert!(a.report.is_clean());
        assert!(a
            .report
            .warnings()
            .any(|d| d.code == CheckCode::PartitionOversubscribed));
        // Idle streams don't count against the budget.
        let mut q = Program::default();
        q.streams.push(stream_on(0, 0, 0, vec![h2d(0)]));
        q.streams.push(stream_on(1, 0, 0, vec![]));
        assert_eq!(analyze(&q, &env(2)).report.warnings().count(), 0);
    }

    // ----- overlap summary & env inference ---------------------------------

    #[test]
    fn overlap_summary_separates_pipelined_from_barriered() {
        // Two independent h2d -> kernel chains: the transfer of one chain
        // is concurrent with the kernel of the other.
        let mut p = Program::default();
        p.streams.push(stream(0, vec![h2d(0), kernel(&[0], &[1])]));
        p.streams.push(stream(1, vec![h2d(2), kernel(&[2], &[3])]));
        let a = analyze(&p, &env(4));
        assert!(a.report.is_clean());
        let s = a.overlap_summary();
        assert_eq!((s.transfers, s.kernels), (2, 2));
        assert_eq!(s.concurrent_transfer_kernel_pairs, 2);

        // The same program with a barrier between phase boundaries has
        // nothing left to overlap.
        let mut q = Program {
            barriers: 1,
            ..Default::default()
        };
        q.streams.push(stream(
            0,
            vec![h2d(0), Action::Barrier(0), kernel(&[0], &[1])],
        ));
        q.streams.push(stream(
            1,
            vec![h2d(2), Action::Barrier(0), kernel(&[2], &[3])],
        ));
        let b = analyze(&q, &env(4));
        assert!(b.report.is_clean());
        assert_eq!(b.overlap_summary().concurrent_transfer_kernel_pairs, 0);
    }

    #[test]
    fn permissive_env_infers_bounds_from_the_program() {
        let mut p = Program::default();
        p.streams.push(stream_on(0, 1, 5, vec![h2d(7)]));
        let e = CheckEnv::permissive(&p);
        assert_eq!((e.buffers, e.devices, e.partitions), (8, 2, 6));
        assert!(analyze(&p, &e).report.is_clean());
    }

    #[test]
    fn analysis_exposes_happens_before_queries() {
        let mut p = Program::default();
        p.streams
            .push(stream(0, vec![h2d(0), Action::RecordEvent(EventId(0))]));
        p.streams
            .push(stream(1, vec![Action::WaitEvent(EventId(0)), d2h(0)]));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        let a = analyze(&p, &env(1));
        assert!(a.happens_before(Site::new(0, 0), Site::new(1, 1)));
        assert!(!a.concurrent(Site::new(0, 0), Site::new(1, 1)));
        assert!(a.report.stats.hb_nodes >= 4);
        assert!(a.report.stats.hb_edges >= 3);
    }
}
