//! Data-race detection over buffer accesses.
//!
//! Every action is lowered to a set of *accesses* `(buffer, space,
//! read|write)`, where the space separates the **host** copy of a buffer
//! from its per-device instances — an H2D reads the host copy and writes
//! the device instance, a D2H does the reverse, kernels touch the space
//! they execute in. Two accesses race when they hit the same buffer in the
//! same space, at least one writes, and the happens-before graph orders
//! them in neither direction. The space split is what keeps legitimate
//! patterns clean: Cholesky's host POTRF round trip (D2H → host kernel →
//! H2D on one stream) never conflicts with device-side readers of other
//! tiles, and multi-card residency mirroring touches distinct instances.

use std::collections::HashMap;

use micsim::pcie::Direction;

use crate::action::Action;
use crate::program::Program;
use crate::types::BufId;

use super::diagnostics::{CheckCode, CheckReport, Diagnostic, Site};
use super::hb::HbGraph;

/// Which copy of a buffer an access touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Space {
    /// The host-memory copy.
    Host,
    /// The instance in device `.0`'s memory.
    Device(usize),
}

impl std::fmt::Display for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Space::Host => write!(f, "host"),
            Space::Device(d) => write!(f, "dev{d}"),
        }
    }
}

/// One buffer access by one action.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Access {
    pub site: Site,
    pub write: bool,
    /// `true` when the access comes from a `Transfer` (for messages).
    pub transfer: bool,
}

/// All accesses of the program, grouped by `(buffer, space)`.
pub(crate) fn collect_accesses(program: &Program) -> HashMap<(BufId, Space), Vec<Access>> {
    let mut map: HashMap<(BufId, Space), Vec<Access>> = HashMap::new();
    let mut push = |buf: BufId, space: Space, site: Site, write: bool, transfer: bool| {
        map.entry((buf, space)).or_default().push(Access {
            site,
            write,
            transfer,
        });
    };
    for (si, s) in program.streams.iter().enumerate() {
        let dev = Space::Device(s.placement.device.0);
        for (ai, a) in s.actions.iter().enumerate() {
            let site = Site::new(si, ai);
            match a {
                Action::Transfer { dir, buf } => match dir {
                    Direction::HostToDevice => {
                        push(*buf, Space::Host, site, false, true);
                        push(*buf, dev, site, true, true);
                    }
                    Direction::DeviceToHost => {
                        push(*buf, dev, site, false, true);
                        push(*buf, Space::Host, site, true, true);
                    }
                },
                Action::Kernel(k) => {
                    let space = if k.host { Space::Host } else { dev };
                    for (buf, write) in k.accesses() {
                        push(buf, space, site, write, false);
                    }
                }
                _ => {}
            }
        }
    }
    map
}

/// Cap on race reports per `(buffer, space)` group, so one missing event
/// in a hot loop does not flood the report.
const MAX_RACES_PER_GROUP: usize = 4;

/// Flag unordered conflicting access pairs. Skipped entirely on cyclic
/// graphs (clock queries are undefined there; the deadlock is the story).
pub(super) fn check(
    program: &Program,
    hb: &HbGraph,
    accesses: &HashMap<(BufId, Space), Vec<Access>>,
    report: &mut CheckReport,
) {
    if hb.cycle().is_some() {
        return;
    }
    let label = |site: Site| program.streams[site.stream.0].actions[site.action_index].label();
    // Deterministic group order for stable output.
    let mut groups: Vec<(&(BufId, Space), &Vec<Access>)> = accesses.iter().collect();
    groups.sort_by_key(|((buf, space), _)| (buf.0, *space != Space::Host, space_key(space)));
    for ((buf, space), group) in groups {
        let mut reported = 0usize;
        // First pair past the cap: every Race diagnostic — including the
        // overflow summary — must name a concrete unordered pair, or its
        // witness schedules degenerate to `a == a` (found by fuzzing).
        let mut unlisted: Option<(Site, Site)> = None;
        for (i, a) in group.iter().enumerate() {
            if !a.write {
                continue;
            }
            for (j, b) in group.iter().enumerate() {
                // Each unordered pair once: write-write pairs only for
                // i < j, write-read pairs from the write's side.
                if i == j || (b.write && j < i) {
                    continue;
                }
                if a.site == b.site || !hb.concurrent(a.site, b.site) {
                    continue;
                }
                if reported < MAX_RACES_PER_GROUP {
                    let verb = if b.write { "write/write" } else { "write/read" };
                    report.push(Diagnostic {
                        code: CheckCode::Race,
                        site: a.site,
                        related: vec![b.site],
                        message: format!(
                            "unsynchronized {verb} of {buf} ({space}): `{}` and `{}` \
                             have no happens-before edge",
                            label(a.site),
                            label(b.site)
                        ),
                    });
                } else if unlisted.is_none() {
                    unlisted = Some((a.site, b.site));
                }
                reported += 1;
            }
        }
        if let Some((site, partner)) = unlisted {
            report.push(Diagnostic {
                code: CheckCode::Race,
                site,
                related: vec![partner],
                message: format!(
                    "{} further unsynchronized pairs on {buf} ({space}) not listed",
                    reported - MAX_RACES_PER_GROUP
                ),
            });
        }
    }
}

fn space_key(space: &Space) -> usize {
    match space {
        Space::Host => 0,
        Space::Device(d) => *d,
    }
}
