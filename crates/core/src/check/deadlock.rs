//! Deadlock diagnostics: event-reference errors and happens-before cycles.

use crate::action::Action;
use crate::program::Program;

use super::diagnostics::{CheckCode, CheckReport, Diagnostic, Site};
use super::hb::HbGraph;

/// Flag malformed event references (unknown events, self-waits) and any
/// cycle the happens-before graph found.
pub(super) fn check(program: &Program, hb: &HbGraph, report: &mut CheckReport) {
    for (si, s) in program.streams.iter().enumerate() {
        for (ai, a) in s.actions.iter().enumerate() {
            let site = Site::new(si, ai);
            match a {
                Action::WaitEvent(e) => match program.events.get(e.0) {
                    None => report.push(Diagnostic {
                        code: CheckCode::UnknownEvent,
                        site,
                        related: vec![],
                        message: format!("wait on {e}, which was never recorded"),
                    }),
                    Some(rec) if rec.stream == s.id => report.push(Diagnostic {
                        code: CheckCode::SelfWait,
                        site,
                        related: vec![Site {
                            stream: rec.stream,
                            action_index: rec.action_index,
                        }],
                        message: format!("stream {} waits on {e}, which it records itself", s.id),
                    }),
                    Some(_) => {}
                },
                Action::RecordEvent(e) => {
                    let site_ok = program
                        .events
                        .get(e.0)
                        .is_some_and(|rec| rec.stream == s.id && rec.action_index == ai);
                    if !site_ok {
                        report.push(Diagnostic {
                            code: CheckCode::UnknownEvent,
                            site,
                            related: vec![],
                            message: format!("record of {e} does not match the event table"),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    if let Some(cycle) = hb.cycle() {
        let mut sites = cycle.to_vec();
        let head = sites.first().copied().unwrap_or(Site::new(0, 0));
        sites.retain(|s| *s != head);
        let hops: Vec<String> = cycle.iter().map(Site::to_string).collect();
        report.push(Diagnostic {
            code: CheckCode::DeadlockCycle,
            site: head,
            related: sites,
            message: format!(
                "cross-stream wait cycle: no stream on {} can advance",
                hops.join(" -> ")
            ),
        });
    }
}
