//! Typed diagnostics emitted by the static analyzer.
//!
//! Every finding is a [`Diagnostic`]: a [`CheckCode`] (what rule fired), a
//! primary [`Site`] (which action), optional related sites (the other half
//! of a race, the rest of a deadlock cycle), and a rendered message. Codes
//! map to a fixed [`Severity`] and a [`CheckClass`]; a program is *clean*
//! when it has no `Severity::Error` diagnostics. The analyzer emits the
//! first four classes; the optimizer's advisory lints
//! ([`crate::opt::lint`]) emit [`CheckClass::Perf`].

use std::fmt;
use std::time::Duration;

use crate::types::StreamId;

/// How bad a diagnostic is.
///
/// `Error` findings (deadlocks, races, malformed references) make both
/// executors refuse the program by default; `Warning` findings (reads of
/// zero-initialized buffers, dead events, oversubscription) are reported
/// but never block execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but legal — the program runs.
    Warning,
    /// The program is refused under [`CheckMode::Enforce`](super::CheckMode).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The families of checks the analyzer and the optimizer's advisory
/// lints cover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckClass {
    /// Cross-stream event cycles and unsatisfiable waits.
    Deadlock,
    /// Conflicting unordered accesses to one buffer in one memory space.
    Race,
    /// Use-before-produce, dead events, dangling references.
    Dataflow,
    /// Placement and partition-budget lints.
    Resource,
    /// Performance advisories from the static optimizer
    /// ([`crate::opt::lint`]): over-synchronization, starvation,
    /// serialized overlap. Never emitted by
    /// [`analyze`](super::analyze), so they cannot affect enforcement.
    Perf,
}

/// The specific rule a diagnostic fired under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckCode {
    /// The happens-before graph has a cycle: every stream on it waits for
    /// an event that cannot fire until the stream itself advances.
    DeadlockCycle,
    /// A stream waits on an event it records itself.
    SelfWait,
    /// A `WaitEvent`/`RecordEvent` references an event with no valid
    /// recording site.
    UnknownEvent,
    /// Two accesses to the same buffer in the same memory space, at least
    /// one a write, with no happens-before edge either way.
    Race,
    /// An action references a buffer the context never allocated.
    UnknownBuffer,
    /// A device-side read (kernel input or D2H) of a buffer no prior
    /// action wrote on that device. Buffers are zero-filled, so this is
    /// legal — but usually means a missing H2D.
    UseBeforeProduce,
    /// A recorded event no stream ever waits on.
    DeadEvent,
    /// A stream is bound to a device or partition outside the plan.
    PlacementOutOfRange,
    /// More active streams share a partition than the context was built
    /// with.
    PartitionOversubscribed,
    /// A wait, record, or barrier whose ordering is already implied by
    /// other happens-before edges — sync elision would remove it.
    RedundantSync,
    /// The program statically leaves partitions idle: fewer busy
    /// placements than the platform provides (`T < P`, the paper's
    /// starvation class).
    StarvedPartitions,
    /// A transfer and an independent cross-stream kernel are
    /// happens-before-ordered: the sync serializing them costs overlap
    /// without adding safety.
    SerializedOverlap,
}

impl CheckCode {
    /// The fixed severity of this rule.
    pub fn severity(self) -> Severity {
        match self {
            CheckCode::DeadlockCycle
            | CheckCode::SelfWait
            | CheckCode::UnknownEvent
            | CheckCode::Race
            | CheckCode::UnknownBuffer
            | CheckCode::PlacementOutOfRange => Severity::Error,
            CheckCode::UseBeforeProduce
            | CheckCode::DeadEvent
            | CheckCode::PartitionOversubscribed
            | CheckCode::RedundantSync
            | CheckCode::StarvedPartitions
            | CheckCode::SerializedOverlap => Severity::Warning,
        }
    }

    /// The check family this rule belongs to.
    pub fn class(self) -> CheckClass {
        match self {
            CheckCode::DeadlockCycle | CheckCode::SelfWait | CheckCode::UnknownEvent => {
                CheckClass::Deadlock
            }
            CheckCode::Race => CheckClass::Race,
            CheckCode::UnknownBuffer | CheckCode::UseBeforeProduce | CheckCode::DeadEvent => {
                CheckClass::Dataflow
            }
            CheckCode::PlacementOutOfRange | CheckCode::PartitionOversubscribed => {
                CheckClass::Resource
            }
            CheckCode::RedundantSync
            | CheckCode::StarvedPartitions
            | CheckCode::SerializedOverlap => CheckClass::Perf,
        }
    }

    /// Stable kebab-case name used in rendered output, e.g.
    /// `error[deadlock-cycle]`.
    pub fn name(self) -> &'static str {
        match self {
            CheckCode::DeadlockCycle => "deadlock-cycle",
            CheckCode::SelfWait => "self-wait",
            CheckCode::UnknownEvent => "unknown-event",
            CheckCode::Race => "race",
            CheckCode::UnknownBuffer => "unknown-buffer",
            CheckCode::UseBeforeProduce => "use-before-produce",
            CheckCode::DeadEvent => "dead-event",
            CheckCode::PlacementOutOfRange => "placement-out-of-range",
            CheckCode::PartitionOversubscribed => "partition-oversubscribed",
            CheckCode::RedundantSync => "redundant-sync",
            CheckCode::StarvedPartitions => "starved-partitions",
            CheckCode::SerializedOverlap => "serialized-overlap",
        }
    }
}

/// Where a diagnostic points: one action in one stream, addressable
/// against [`Program::dump`](crate::program::Program::dump) line numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// The stream.
    pub stream: StreamId,
    /// Index of the action within that stream's FIFO queue.
    pub action_index: usize,
}

impl Site {
    /// Construct from raw indices.
    pub fn new(stream: usize, action_index: usize) -> Site {
        Site {
            stream: StreamId(stream),
            action_index,
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.stream, self.action_index)
    }
}

/// One analyzer finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: CheckCode,
    /// The primary offending action.
    pub site: Site,
    /// Other involved actions (race partner, remaining cycle hops).
    pub related: Vec<Site>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Severity, from the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Check class, from the code.
    pub fn class(&self) -> CheckClass {
        self.code.class()
    }

    /// Compiler-style one-liner:
    /// `error[race] at s1[3]: ... (see s0[2])`.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{}[{}] at {}: {}",
            self.severity(),
            self.code.name(),
            self.site,
            self.message
        );
        if !self.related.is_empty() {
            let sites: Vec<String> = self.related.iter().map(Site::to_string).collect();
            line.push_str(&format!(" (see {})", sites.join(", ")));
        }
        line
    }
}

/// Size and cost counters for one analysis run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// Actions analyzed.
    pub actions: usize,
    /// Nodes in the happens-before graph (actions + barrier join points).
    pub hb_nodes: usize,
    /// Edges in the happens-before graph.
    pub hb_edges: usize,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
}

/// Everything one [`analyze`](super::analyze) pass found.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// All findings, errors first, in deterministic site order within each
    /// severity.
    pub diagnostics: Vec<Diagnostic>,
    /// Analysis counters.
    pub stats: CheckStats,
}

impl CheckReport {
    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// `true` when the program has no error-severity findings (warnings
    /// are allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Findings in `class`.
    pub fn in_class(&self, class: CheckClass) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.class() == class)
    }

    /// Sort errors before warnings, then by site, and append one finding.
    pub(crate) fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Canonical ordering: errors first, then by (stream, action, code
    /// name) so output is deterministic.
    pub(crate) fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity()
                .cmp(&a.severity())
                .then(a.site.cmp(&b.site))
                .then(a.code.name().cmp(b.code.name()))
        });
    }

    /// Render every finding, one per line, with a trailing summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "check: {} error(s), {} warning(s) over {} actions ({} hb nodes, {} hb edges)\n",
            self.error_count(),
            self.warnings().count(),
            self.stats.actions,
            self.stats.hb_nodes,
            self.stats.hb_edges
        ));
        out
    }

    /// One-line summary for error messages: the count plus the first
    /// error's rendering.
    pub fn summary(&self) -> String {
        match self.errors().next() {
            Some(first) => format!("{} error(s); first: {}", self.error_count(), first.render()),
            None => "no errors".into(),
        }
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: CheckCode, stream: usize, idx: usize) -> Diagnostic {
        Diagnostic {
            code,
            site: Site::new(stream, idx),
            related: vec![],
            message: "m".into(),
        }
    }

    #[test]
    fn codes_map_to_fixed_severity_and_class() {
        assert_eq!(CheckCode::DeadlockCycle.severity(), Severity::Error);
        assert_eq!(CheckCode::DeadlockCycle.class(), CheckClass::Deadlock);
        assert_eq!(CheckCode::Race.severity(), Severity::Error);
        assert_eq!(CheckCode::UseBeforeProduce.severity(), Severity::Warning);
        assert_eq!(CheckCode::UseBeforeProduce.class(), CheckClass::Dataflow);
        assert_eq!(
            CheckCode::PartitionOversubscribed.class(),
            CheckClass::Resource
        );
    }

    #[test]
    fn report_orders_errors_first_and_renders_sites() {
        let mut r = CheckReport::default();
        r.push(diag(CheckCode::DeadEvent, 2, 5));
        r.push(diag(CheckCode::Race, 0, 1));
        r.finish();
        assert_eq!(r.diagnostics[0].code, CheckCode::Race);
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        let text = r.render();
        assert!(text.contains("error[race] at s0[1]"));
        assert!(text.contains("warning[dead-event] at s2[5]"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert!(r.summary().contains("error[race]"));
    }

    #[test]
    fn related_sites_render_in_parens() {
        let mut d = diag(CheckCode::Race, 1, 3);
        d.related.push(Site::new(0, 7));
        assert!(d.render().contains("(see s0[7])"));
    }
}
