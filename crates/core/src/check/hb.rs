//! The happens-before graph over a recorded [`Program`].
//!
//! Nodes are the program's actions plus one virtual *join* node per
//! barrier index. Edges encode the executors' ordering guarantees:
//!
//! * **FIFO** — each action after its predecessor in the same stream;
//! * **events** — every `WaitEvent(e)` after the `RecordEvent(e)` site;
//! * **barriers** — `Barrier(n)` actions feed barrier `n`'s join node,
//!   which feeds the next action of every participating stream.
//!
//! A Kahn topological sort detects cycles (deadlocks) and, on acyclic
//! graphs, drives one forward pass of per-stream **vector clocks**:
//! `clock[v][s]` is the number of leading actions of stream `s` that must
//! complete before `v` *starts*. That makes every happens-before query
//! O(1) — `a → b` iff `clock[b][a.stream] > a.action_index` — at
//! O(nodes × streams) build cost, microseconds for paper-scale programs.

use std::collections::VecDeque;

use crate::action::Action;
use crate::program::Program;
use crate::types::StreamId;

use super::diagnostics::Site;

/// Node layout + predecessor lists of the happens-before graph — the
/// part of the construction shared between [`HbGraph::build`] (which adds
/// cycle detection and vector clocks on top) and the witness scheduler
/// ([`super::witness`], which runs constrained topological sorts over the
/// same edges to produce executable schedules).
pub(crate) struct HbEdges {
    /// First node id of each stream's action run (last entry = total
    /// action count).
    pub(crate) offsets: Vec<usize>,
    /// Action-node count; barrier join nodes follow.
    pub(crate) total_actions: usize,
    /// Total nodes: actions + barrier join nodes.
    pub(crate) nodes: usize,
    /// Predecessor lists, indexed by node.
    pub(crate) preds: Vec<Vec<u32>>,
}

impl HbEdges {
    /// Build the edge lists for `program` under the executors' ordering
    /// rules (FIFO, events, barriers).
    pub(crate) fn build(program: &Program) -> HbEdges {
        let n_streams = program.streams.len();
        let mut offsets = Vec::with_capacity(n_streams + 1);
        let mut total = 0usize;
        for s in &program.streams {
            offsets.push(total);
            total += s.actions.len();
        }
        offsets.push(total);

        // Barrier join nodes follow the action nodes.
        let mut n_barriers = program.barriers;
        for s in &program.streams {
            for a in &s.actions {
                if let Action::Barrier(n) = a {
                    n_barriers = n_barriers.max(n + 1);
                }
            }
        }
        let nodes = total + n_barriers;

        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        for (si, s) in program.streams.iter().enumerate() {
            for (ai, a) in s.actions.iter().enumerate() {
                let v = offsets[si] + ai;
                if ai > 0 {
                    preds[v].push((v - 1) as u32);
                }
                match a {
                    Action::WaitEvent(e) => {
                        if let Some(site) = program.events.get(e.0) {
                            let rs = site.stream.0;
                            if rs < n_streams
                                && site.action_index < program.streams[rs].actions.len()
                            {
                                preds[v].push((offsets[rs] + site.action_index) as u32);
                            }
                        }
                    }
                    Action::Barrier(n) => {
                        preds[total + n].push(v as u32);
                        if ai + 1 < s.actions.len() {
                            preds[v + 1].push((total + n) as u32);
                        }
                    }
                    _ => {}
                }
            }
        }

        HbEdges {
            offsets,
            total_actions: total,
            nodes,
            preds,
        }
    }

    /// The stream owning action node `v`, or `None` for barrier joins.
    pub(crate) fn stream_of(&self, v: usize) -> Option<usize> {
        if v >= self.total_actions {
            return None;
        }
        // offsets is sorted; partition_point finds the owning stream.
        Some(self.offsets.partition_point(|&o| o <= v) - 1)
    }

    /// The site of action node `v`, or `None` for barrier joins.
    pub(crate) fn site_of(&self, v: usize) -> Option<Site> {
        self.stream_of(v).map(|s| Site {
            stream: StreamId(s),
            action_index: v - self.offsets[s],
        })
    }

    /// The node id of `site`.
    pub(crate) fn node_of(&self, site: Site) -> usize {
        self.offsets[site.stream.0] + site.action_index
    }
}

/// Dense happens-before representation built by [`crate::check::analyze`].
pub struct HbGraph {
    n_streams: usize,
    /// First node id of each stream's action run (last entry = total
    /// action count).
    offsets: Vec<usize>,
    /// Total nodes: actions + barrier join nodes.
    nodes: usize,
    edges: usize,
    /// Flat `nodes × n_streams` in-clocks; empty when the graph is cyclic.
    clocks: Vec<u32>,
    /// One witness cycle (action sites only, causal order), if any.
    cycle: Option<Vec<Site>>,
}

impl HbGraph {
    /// Build the graph and run cycle detection + clock propagation.
    pub fn build(program: &Program) -> HbGraph {
        let n_streams = program.streams.len();
        let HbEdges {
            offsets,
            total_actions: total,
            nodes,
            preds,
        } = HbEdges::build(program);

        let edges = preds.iter().map(Vec::len).sum();

        // Successor lists + in-degrees for Kahn.
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        let mut indeg: Vec<u32> = vec![0; nodes];
        for (v, ps) in preds.iter().enumerate() {
            indeg[v] = ps.len() as u32;
            for &p in ps {
                succs[p as usize].push(v as u32);
            }
        }

        // Stream of each action node, for the clock bump.
        let stream_of = |v: usize| -> Option<usize> {
            if v >= total {
                return None;
            }
            // offsets is sorted; partition_point finds the owning stream.
            Some(offsets.partition_point(|&o| o <= v) - 1)
        };

        let mut clocks: Vec<u32> = vec![0; nodes * n_streams];
        let mut queue: VecDeque<usize> = (0..nodes).filter(|&v| indeg[v] == 0).collect();
        let mut popped = 0usize;
        let mut bumped = vec![0u32; n_streams];
        while let Some(v) = queue.pop_front() {
            popped += 1;
            // out-clock of v = in-clock of v, plus v itself if it is an
            // action node.
            bumped.copy_from_slice(&clocks[v * n_streams..(v + 1) * n_streams]);
            if let Some(sv) = stream_of(v) {
                let idx = (v - offsets[sv] + 1) as u32;
                bumped[sv] = bumped[sv].max(idx);
            }
            for &w in &succs[v] {
                let w = w as usize;
                let wc = &mut clocks[w * n_streams..(w + 1) * n_streams];
                for (c, b) in wc.iter_mut().zip(&bumped) {
                    *c = (*c).max(*b);
                }
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }

        let cycle = if popped < nodes {
            clocks.clear();
            Some(extract_cycle(&preds, &indeg, total, &offsets, stream_of))
        } else {
            None
        };

        HbGraph {
            n_streams,
            offsets,
            nodes,
            edges,
            clocks,
            cycle,
        }
    }

    /// Nodes in the graph (actions + barrier joins).
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// A witness deadlock cycle (action sites, causal order), if the
    /// graph is cyclic.
    pub fn cycle(&self) -> Option<&[Site]> {
        self.cycle.as_deref()
    }

    /// Does `a` complete before `b` can start? `false` on cyclic graphs
    /// and for `a == b`.
    pub fn happens_before(&self, a: Site, b: Site) -> bool {
        if self.clocks.is_empty() || a == b {
            return false;
        }
        let (sa, sb) = (a.stream.0, b.stream.0);
        debug_assert!(sa < self.n_streams && sb < self.n_streams);
        let vb = self.offsets[sb] + b.action_index;
        self.clocks[vb * self.n_streams + sa] > a.action_index as u32
    }

    /// Neither `a → b` nor `b → a` (and `a != b`).
    pub fn concurrent(&self, a: Site, b: Site) -> bool {
        a != b && !self.happens_before(a, b) && !self.happens_before(b, a)
    }
}

/// Walk predecessor edges inside the unsorted remainder of a cyclic graph
/// until a node repeats, then report the loop as action sites in causal
/// order. Barrier join nodes on the loop are skipped in the report (their
/// incoming barrier actions are on it too).
fn extract_cycle(
    preds: &[Vec<u32>],
    indeg: &[u32],
    total_actions: usize,
    offsets: &[usize],
    stream_of: impl Fn(usize) -> Option<usize>,
) -> Vec<Site> {
    let start = indeg
        .iter()
        .position(|&d| d > 0)
        .expect("cyclic graph has a node with remaining in-degree");
    let mut pos = vec![usize::MAX; preds.len()];
    let mut path: Vec<usize> = Vec::new();
    let mut v = start;
    loop {
        if pos[v] != usize::MAX {
            let mut cycle: Vec<Site> = path[pos[v]..]
                .iter()
                .filter(|&&n| n < total_actions)
                .map(|&n| {
                    let s = stream_of(n).expect("action node");
                    Site {
                        stream: StreamId(s),
                        action_index: n - offsets[s],
                    }
                })
                .collect();
            cycle.reverse(); // pred-walk order is anti-causal
            return cycle;
        }
        pos[v] = path.len();
        path.push(v);
        // Every unsorted node keeps at least one unsorted predecessor, so
        // the walk stays inside the cyclic region and must repeat.
        v = preds[v]
            .iter()
            .map(|&p| p as usize)
            .find(|&p| indeg[p] > 0)
            .expect("unsorted node has an unsorted predecessor");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{EventSite, StreamPlacement, StreamRecord};
    use crate::types::{BufId, EventId};
    use micsim::device::DeviceId;
    use micsim::pcie::Direction;

    fn stream(id: usize, actions: Vec<Action>) -> StreamRecord {
        StreamRecord {
            id: StreamId(id),
            placement: StreamPlacement {
                device: DeviceId(0),
                partition: id,
            },
            actions,
        }
    }

    fn h2d(buf: usize) -> Action {
        Action::Transfer {
            dir: Direction::HostToDevice,
            buf: BufId(buf),
        }
    }

    #[test]
    fn fifo_orders_within_a_stream_only() {
        let mut p = Program::default();
        p.streams.push(stream(0, vec![h2d(0), h2d(1)]));
        p.streams.push(stream(1, vec![h2d(2)]));
        let g = HbGraph::build(&p);
        assert!(g.cycle().is_none());
        assert!(g.happens_before(Site::new(0, 0), Site::new(0, 1)));
        assert!(!g.happens_before(Site::new(0, 1), Site::new(0, 0)));
        assert!(g.concurrent(Site::new(0, 0), Site::new(1, 0)));
    }

    #[test]
    fn events_order_across_streams_transitively() {
        let mut p = Program::default();
        p.streams
            .push(stream(0, vec![h2d(0), Action::RecordEvent(EventId(0))]));
        p.streams
            .push(stream(1, vec![Action::WaitEvent(EventId(0)), h2d(1)]));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        let g = HbGraph::build(&p);
        assert!(g.happens_before(Site::new(0, 0), Site::new(1, 1)));
        assert!(g.happens_before(Site::new(0, 1), Site::new(1, 0)));
        // The record does not wait for the waiter.
        assert!(!g.happens_before(Site::new(1, 0), Site::new(0, 1)));
    }

    #[test]
    fn barriers_join_all_streams() {
        let mut p = Program {
            barriers: 1,
            ..Default::default()
        };
        p.streams
            .push(stream(0, vec![h2d(0), Action::Barrier(0), h2d(1)]));
        p.streams
            .push(stream(1, vec![h2d(2), Action::Barrier(0), h2d(3)]));
        let g = HbGraph::build(&p);
        // Pre-barrier work in stream 1 precedes post-barrier work in stream 0.
        assert!(g.happens_before(Site::new(1, 0), Site::new(0, 2)));
        assert!(g.happens_before(Site::new(0, 0), Site::new(1, 2)));
        // Pre-barrier actions of different streams stay concurrent.
        assert!(g.concurrent(Site::new(0, 0), Site::new(1, 0)));
    }

    #[test]
    fn mutual_event_wait_is_a_cycle() {
        // s0: wait e1, record e0 / s1: wait e0, record e1.
        let mut p = Program::default();
        p.streams.push(stream(
            0,
            vec![
                Action::WaitEvent(EventId(1)),
                Action::RecordEvent(EventId(0)),
            ],
        ));
        p.streams.push(stream(
            1,
            vec![
                Action::WaitEvent(EventId(0)),
                Action::RecordEvent(EventId(1)),
            ],
        ));
        p.events.push(EventSite {
            stream: StreamId(0),
            action_index: 1,
        });
        p.events.push(EventSite {
            stream: StreamId(1),
            action_index: 1,
        });
        let g = HbGraph::build(&p);
        let cycle = g.cycle().expect("mutual wait must cycle");
        assert!(cycle.len() >= 2, "cycle: {cycle:?}");
        // Queries are disabled on cyclic graphs.
        assert!(!g.happens_before(Site::new(0, 0), Site::new(0, 1)));
    }

    #[test]
    fn wait_on_event_recorded_causally_after_the_wait_cycles_via_barrier() {
        // s0 waits on e0 *before* the barrier, but s1 records e0 only
        // *after* it — the record is causally after the wait, so neither
        // side can advance.
        let mut p = Program {
            barriers: 1,
            ..Default::default()
        };
        p.streams.push(stream(
            0,
            vec![Action::WaitEvent(EventId(0)), Action::Barrier(0)],
        ));
        p.streams.push(stream(
            1,
            vec![Action::Barrier(0), Action::RecordEvent(EventId(0))],
        ));
        p.events.push(EventSite {
            stream: StreamId(1),
            action_index: 1,
        });
        let g = HbGraph::build(&p);
        let cycle = g.cycle().expect("wait precedes its record: deadlock");
        assert!(cycle.iter().any(|s| s.stream == StreamId(0)));
        assert!(cycle.iter().any(|s| s.stream == StreamId(1)));
    }

    #[test]
    fn clock_cost_scales_with_nodes_times_streams() {
        // Smoke-size the representation: 8 streams x 100 actions builds
        // and answers queries.
        let mut p = Program::default();
        for s in 0..8 {
            p.streams
                .push(stream(s, (0..100).map(|i| h2d(s * 100 + i)).collect()));
        }
        let g = HbGraph::build(&p);
        assert_eq!(g.node_count(), 800);
        assert!(g.happens_before(Site::new(3, 0), Site::new(3, 99)));
        assert!(g.concurrent(Site::new(3, 99), Site::new(4, 0)));
    }
}
