//! Serve-mode oracle: multi-tenant interleaving must be invisible.
//!
//! Two clean genomes are packaged as [`TenantProgram`] payloads over the
//! fixed buffer palette and served three ways on identically configured
//! services — tenant A alone, tenant B alone, and both interleaved
//! through one [`StreamService`]. The contract:
//!
//! * both payloads are **admitted** (clean genomes fit the service's
//!   stream budget by construction);
//! * every job **completes** within the round budget;
//! * each tenant's outputs are **bit-identical** between its solo run and
//!   the interleaved run — relocation, partition folding, barrier
//!   lowering and lease resizing must not leak one tenant's work into
//!   another's buffers;
//! * a genome-spliced kernel panic in one tenant degrades **only** that
//!   tenant (per-lease poisoning), which then retries to the same clean
//!   outputs.
//!
//! Violations come back as [`Disagreement`]s with `serve-*` classes; the
//! fuzzer records them unshrunk (the pair, not one genome, is the
//! reproducer).

use hstreams::action::Action;
use hstreams::check::{analyze, CheckEnv};
use hstreams::lease::TenantId;
use hstreams::program::Program;
use hstreams::testutil::splitmix64;
use hstreams::types::BufId;
use micsim::pcie::Direction;
use micsim::PlatformConfig;
use std::collections::BTreeSet;
use stream_serve::{
    Admission, CapturedBuffer, JobStatus, ServeConfig, StreamService, TenantProgram,
};

use crate::genome::{buf_len, FaultSite, ProgramSpec, N_BUFS};
use crate::harness::{CaseOutcome, Disagreement};

/// Package a genome as a relocatable tenant payload. Every payload
/// carries the full palette with deterministic nonzero fills, so solo
/// and interleaved runs start from the same initial memory state. A
/// spliced [`FaultSite::KernelPanic`] aimed at a device kernel becomes
/// the payload's injection site; other fault kinds are dropped (the
/// service's per-lease poisoning only models kernel panics).
pub fn payload(spec: &ProgramSpec, name: &str) -> TenantProgram {
    let program = spec.to_program();
    let buffers = (0..N_BUFS)
        .map(|i| {
            let len = buf_len(i);
            CapturedBuffer {
                name: format!("b{i}"),
                len,
                host: (0..len)
                    .map(|j| (splitmix64((i * 131 + j) as u64 ^ 0x5e4e) % 1024) as f32 / 1024.0)
                    .collect(),
            }
        })
        .collect();
    let outputs = derive_outputs(&program);
    let fault = spec.fault.and_then(|f| match f.site {
        FaultSite::KernelPanic { lane, index } => {
            let is_device_kernel = spec
                .lanes
                .get(lane)
                .and_then(|l| l.get(index))
                .is_some_and(|g| matches!(g, crate::genome::Gene::Kernel { host: false, .. }));
            is_device_kernel.then_some((lane, index))
        }
        _ => None,
    });
    TenantProgram {
        workload: name.to_string(),
        partitions: spec.partitions,
        program,
        buffers,
        outputs,
        fault,
    }
}

fn derive_outputs(program: &Program) -> Vec<BufId> {
    let mut outs: Vec<BufId> = Vec::new();
    for s in &program.streams {
        for a in &s.actions {
            if let Action::Transfer {
                dir: Direction::DeviceToHost,
                buf,
            } = a
            {
                if !outs.contains(buf) {
                    outs.push(*buf);
                }
            }
        }
    }
    if outs.is_empty() {
        for s in &program.streams {
            for a in &s.actions {
                if let Action::Kernel(k) = a {
                    for b in &k.writes {
                        if !outs.contains(b) {
                            outs.push(*b);
                        }
                    }
                }
            }
        }
    }
    outs
}

/// Is this genome's program one the serve contract applies to — valid
/// and checker-clean? Rejected genomes are the *executor* oracles' turf.
pub fn admissible(spec: &ProgramSpec) -> bool {
    let program = spec.to_program();
    if program.validate().is_err() {
        return false;
    }
    let env = CheckEnv::permissive(&program);
    analyze(&program, &env).report.error_count() == 0
}

/// Serve the payloads on one fresh service and return, per tenant, the
/// bit patterns of its completed outputs plus how many degraded rounds
/// it saw. `Err` carries a disagreement (refusal, drain failure, or a
/// job that never completed).
#[allow(clippy::type_complexity)]
fn serve_all(
    payloads: &[TenantProgram],
) -> std::result::Result<Vec<(Vec<Vec<u32>>, usize)>, Disagreement> {
    let mut svc = StreamService::new(ServeConfig::new(PlatformConfig::phi_31sp()))
        .map_err(|e| disagree("serve-refused", format!("service construction failed: {e}")))?;
    for (t, p) in payloads.iter().enumerate() {
        match svc.submit(TenantId(t as u16), p.clone()) {
            Admission::Accepted(_) => {}
            a => {
                return Err(disagree(
                    "serve-refused",
                    format!("clean payload {} refused admission: {a:?}", p.workload),
                ))
            }
        }
    }
    let reports = svc
        .drain(8)
        .map_err(|e| disagree("serve-refused", format!("drain failed: {e}")))?;
    let mut out: Vec<(Option<Vec<Vec<u32>>>, usize)> = vec![(None, 0); payloads.len()];
    for o in reports.iter().flat_map(|r| &r.outcomes) {
        let slot = &mut out[o.tenant.0 as usize];
        match &o.status {
            JobStatus::Completed { outputs } => {
                slot.0 = Some(
                    outputs
                        .iter()
                        .map(|v| v.iter().map(|x| x.to_bits()).collect())
                        .collect(),
                );
            }
            JobStatus::Degraded { .. } => slot.1 += 1,
        }
    }
    out.into_iter()
        .enumerate()
        .map(|(t, (bits, degraded))| {
            bits.map(|b| (b, degraded)).ok_or_else(|| {
                disagree(
                    "serve-incomplete",
                    format!("tenant t{t} ({}) never completed", payloads[t].workload),
                )
            })
        })
        .collect()
}

fn disagree(class: &str, detail: String) -> Disagreement {
    Disagreement {
        class: class.to_string(),
        detail,
    }
}

/// Run the serve-mode differential described in the [module docs](self).
/// Genomes the checker rejects are skipped with a `serve:skip-rejected`
/// signal — refusal conformance is the executor harness's contract.
pub fn serve_case(a: &ProgramSpec, b: &ProgramSpec) -> CaseOutcome {
    let mut signals: BTreeSet<String> = BTreeSet::new();
    if !admissible(a) || !admissible(b) {
        signals.insert("serve:skip-rejected".to_string());
        return CaseOutcome {
            signals,
            rejected: true,
            disagreement: None,
        };
    }
    let pa = payload(a, "ta");
    let pb = payload(b, "tb");
    let faulty = [pa.fault.is_some(), pb.fault.is_some()];
    signals.insert(if faulty.iter().any(|&f| f) {
        "serve:pair-fault".to_string()
    } else {
        "serve:pair-clean".to_string()
    });

    let run = |payloads: &[TenantProgram]| serve_all(payloads);
    let result = (|| {
        let solo_a = run(std::slice::from_ref(&pa))?;
        let solo_b = run(std::slice::from_ref(&pb))?;
        let merged = run(&[pa.clone(), pb.clone()])?;
        Ok::<_, Disagreement>((solo_a, solo_b, merged))
    })();
    let (solo_a, solo_b, merged) = match result {
        Ok(r) => r,
        Err(d) => {
            return CaseOutcome {
                signals,
                rejected: false,
                disagreement: Some(d),
            }
        }
    };

    let mut disagreement = None;
    for (t, (solo, name)) in [(&solo_a[0], "ta"), (&solo_b[0], "tb")].iter().enumerate() {
        let shared = &merged[t];
        if shared.0 != solo.0 && disagreement.is_none() {
            disagreement = Some(disagree(
                "serve-isolation",
                format!("tenant {name}'s outputs diverge between solo and interleaved serving"),
            ));
        }
        if shared.1 > 0 {
            signals.insert("serve:degraded-retry".to_string());
            if !faulty[t] && disagreement.is_none() {
                disagreement = Some(disagree(
                    "serve-cross-degrade",
                    format!("tenant {name} degraded without carrying a fault"),
                ));
            }
        }
    }
    CaseOutcome {
        signals,
        rejected: false,
        disagreement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{FaultSpec, Gene};
    use hstreams::sched::SchedulerKind;

    fn two_lane(seed_buf: usize) -> ProgramSpec {
        let mut s = ProgramSpec {
            partitions: 2,
            placements: vec![0, 1],
            lanes: vec![
                vec![
                    Gene::H2D(seed_buf),
                    Gene::Kernel {
                        reads: vec![seed_buf],
                        writes: vec![seed_buf + 1],
                        work: 3,
                        host: false,
                    },
                    Gene::Record(0),
                ],
                vec![Gene::Wait(0), Gene::D2H(seed_buf + 1)],
            ],
            scheduler: SchedulerKind::Fifo,
            fault: None,
        };
        s.repair();
        s
    }

    #[test]
    fn clean_pairs_serve_isolated() {
        let out = serve_case(&two_lane(0), &two_lane(4));
        assert!(!out.rejected);
        assert!(out.disagreement.is_none(), "{:?}", out.disagreement);
        assert!(out.signals.contains("serve:pair-clean"));
    }

    #[test]
    fn identical_palette_use_still_isolates() {
        // Both tenants address the *same* palette buffers — the service
        // must give each its own shared allocation.
        let out = serve_case(&two_lane(2), &two_lane(2));
        assert!(out.disagreement.is_none(), "{:?}", out.disagreement);
    }

    #[test]
    fn spliced_kernel_panic_degrades_only_its_tenant() {
        let mut chaos = two_lane(8);
        chaos.fault = Some(FaultSpec {
            seed: 5,
            attempts: 1,
            site: FaultSite::KernelPanic { lane: 0, index: 1 },
        });
        chaos.repair();
        let out = serve_case(&chaos, &two_lane(12));
        assert!(out.disagreement.is_none(), "{:?}", out.disagreement);
        assert!(
            out.signals.contains("serve:degraded-retry"),
            "{:?}",
            out.signals
        );
        assert!(out.signals.contains("serve:pair-fault"));
    }

    #[test]
    fn rejected_genomes_are_skipped() {
        let mut racy = two_lane(0);
        racy.lanes[1].remove(0); // drop the wait: d2h races the kernel
        racy.repair();
        let out = serve_case(&racy, &two_lane(4));
        assert!(out.rejected);
        assert!(out.signals.contains("serve:skip-rejected"));
        assert!(out.disagreement.is_none());
    }
}
