//! # stream-fuzz — coverage-guided differential fuzzing of the runtime
//!
//! The workspace carries four independent opinions about every recorded
//! [`Program`](hstreams::program::Program):
//!
//! 1. the **static checker** ([`hstreams::check`]) claims the program is
//!    clean, or names a hazard (race, deadlock, dangling reference);
//! 2. the **simulator** ([`hstreams::executor::sim`]) prices it on the
//!    calibrated platform model and exports a deterministic metric
//!    snapshot;
//! 3. the **native executor** ([`hstreams::executor::native`]) really runs
//!    it on partitioned thread pools;
//! 4. the **sync-elision optimizer** ([`hstreams::opt`]) claims its
//!    rewrite of a clean program is happens-before equivalent, and must
//!    refuse to touch a rejected one.
//!
//! This crate grinds the four against each other. A deterministic
//! mutator ([`mutate()`]) perturbs program *genomes* ([`genome`]) — adding,
//! removing and moving waits and record-event edges, re-homing streams,
//! splitting tiles, swapping scheduler kinds, splicing fault plans — and a
//! corpus keeps every input that lights up a **novel coverage signal**
//! ([`signals`]): a new checker diagnostic class at a new site, a new
//! overlap shape, a new metrics-catalog delta, a new fault-counter or
//! steal pattern. Retained inputs run through the **differential
//! harness** ([`harness`]), which enforces the four-oracle contract:
//!
//! * **clean** programs must execute on both executors, bit-identically
//!   across repeated native runs, agreeing with the sequential reference
//!   interpreter ([`hstreams::testutil::RefExec`]), with parity-equal
//!   metric catalogs;
//! * **rejected** programs must be refused by both executors, and the
//!   checker's claim must be *demonstrable*: its
//!   [witness](hstreams::check::HazardWitness) schedule wedges (deadlock)
//!   or diverges (race) when replayed;
//! * the **optimized** form of a clean program must carry a holding
//!   equivalence certificate, agree with the reference interpreter, and
//!   (on the full tier, whenever anything was elided) run natively
//!   bit-identically to the original.
//!
//! Disagreements are shrunk ([`shrink()`]) to minimal reproducers and
//! surfaced as [`fuzzer::Finding`]s for committal as regression tests.
//!
//! Everything is deterministic end to end: seeds live in the corpus
//! entries, no wall clock or global RNG is consulted, and the same seed
//! plus the same seed corpus reproduce the same corpus evolution
//! byte-for-byte ([`fuzzer::Fuzzer::evolution_hash`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fuzzer;
pub mod genome;
pub mod harness;
pub mod mutate;
pub mod serve;
pub mod shrink;
pub mod signals;

pub use fuzzer::{CorpusEntry, Finding, Fuzzer, FuzzerConfig};
pub use genome::{buf_len, buf_lens, FaultSite, FaultSpec, Gene, ProgramSpec, N_BUFS};
pub use harness::{CaseOutcome, Disagreement, Harness};
pub use mutate::{mutate, Rng, OPS};
pub use serve::serve_case;
pub use shrink::shrink;
