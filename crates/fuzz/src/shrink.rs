//! Greedy disagreement shrinking.
//!
//! Given a genome whose case produced a [`Disagreement`](crate::harness::Disagreement), repeatedly try
//! structure-removing simplifications — drop a gene, drop a lane, drop
//! the fault plan, reset the scheduler to FIFO — keeping each change only
//! if the case still disagrees **with the same class**. The result is the
//! minimal reproducer committed as a regression test.
//!
//! Shrinking is deterministic (fixed iteration order, no randomness) and
//! bounded: at most [`MAX_PASSES`] full passes, each of which must make
//! progress to continue.

use hstreams::sched::SchedulerKind;

use crate::genome::ProgramSpec;
use crate::harness::Harness;

/// Maximum simplification passes over the genome.
pub const MAX_PASSES: usize = 6;

fn still_fails(h: &mut Harness, spec: &ProgramSpec, class: &str, full: bool) -> bool {
    h.run_case(spec, full)
        .disagreement
        .is_some_and(|d| d.class == class)
}

/// Shrink `spec` while preserving a disagreement of class `class`.
/// `full` must match the oracle depth that produced the disagreement
/// (native-side classes need full runs to reproduce).
pub fn shrink(h: &mut Harness, spec: &ProgramSpec, class: &str, full: bool) -> ProgramSpec {
    let mut cur = spec.clone();
    if !still_fails(h, &cur, class, full) {
        // Not reproducible (e.g. it needed corpus context): return as-is.
        return cur;
    }
    for _ in 0..MAX_PASSES {
        let mut progressed = false;

        // Drop whole lanes, last first.
        let mut li = cur.lanes.len();
        while li > 0 && cur.lanes.len() > 1 {
            li -= 1;
            let mut cand = cur.clone();
            cand.lanes.remove(li);
            cand.placements.remove(li);
            cand.repair();
            if still_fails(h, &cand, class, full) {
                cur = cand;
                progressed = true;
            }
        }

        // Drop single genes, last lane/position first.
        for li in (0..cur.lanes.len()).rev() {
            let mut gi = cur.lanes[li].len();
            while gi > 0 {
                gi -= 1;
                if gi >= cur.lanes[li].len() {
                    continue;
                }
                let mut cand = cur.clone();
                cand.lanes[li].remove(gi);
                cand.repair();
                if still_fails(h, &cand, class, full) {
                    cur = cand;
                    progressed = true;
                }
            }
        }

        // Simplify the environment: no fault plan, baseline scheduler.
        if cur.fault.is_some() {
            let mut cand = cur.clone();
            cand.fault = None;
            if still_fails(h, &cand, class, full) {
                cur = cand;
                progressed = true;
            }
        }
        if cur.scheduler != SchedulerKind::Fifo {
            let mut cand = cur.clone();
            cand.scheduler = SchedulerKind::Fifo;
            if still_fails(h, &cand, class, full) {
                cur = cand;
                progressed = true;
            }
        }

        if !progressed {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Gene;

    /// A genome with a racy pair buried under unrelated tiles: shrinking a
    /// rejection-class "disagreement" stand-in isn't directly testable
    /// without a real oracle bug, so instead verify the engine respects
    /// the no-reproduction guard and determinism on a contract-conforming
    /// genome.
    #[test]
    fn shrink_returns_input_when_nothing_fails() {
        let mut spec = ProgramSpec::minimal();
        spec.lanes[0].push(Gene::H2D(2));
        spec.repair();
        let mut h = Harness::new();
        let out = shrink(&mut h, &spec, "native-ref-divergence", false);
        assert_eq!(out, spec, "conforming genomes shrink to themselves");
    }
}
