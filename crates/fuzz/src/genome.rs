//! Program genomes: a mutation-friendly, text-serializable encoding of
//! runtime programs.
//!
//! A [`ProgramSpec`] is the fuzzer's genotype. It is deliberately more
//! constrained than a raw [`Program`]:
//!
//! * one device, at most [`MAX_LANES`] streams and [`MAX_PARTITIONS`]
//!   partitions — the executors' panic-free envelope (the native backend
//!   keeps a single real device space, so multi-device programs would
//!   falsely share storage);
//! * a **fixed buffer palette**: every genome addresses the same
//!   [`N_BUFS`] buffers with lengths [`buf_len`], so one long-lived
//!   [`Context`](hstreams::context::Context) per geometry serves the whole
//!   corpus and no mutation can outgrow the allocation table;
//! * kernels are *re-encoded* as [`mix_kernel`]s — deterministic dual-face
//!   bodies — so every genome is executable on the simulator, the native
//!   backend, and the reference interpreter with bit-comparable results.
//!
//! [`ProgramSpec::repair`] restores the structural invariants after any
//! mutation (dense event numbering, one record per event, no self-lane
//! waits, equal barrier counts), which means `to_program()` output always
//! passes [`Program::validate`] — the interesting rejections are the
//! *semantic* ones (races, deadlocks) the checker must catch.
//!
//! Genomes serialize to a line-oriented text format ([`ProgramSpec::to_text`]
//! / [`ProgramSpec::parse`]) so minimized reproducers and the committed
//! corpus are reviewable diffs, not binary blobs.

use hstreams::action::Action;
use hstreams::fault::FaultPlan;
use hstreams::program::{EventSite, Program, StreamPlacement, StreamRecord};
use hstreams::sched::SchedulerKind;
use hstreams::testutil::mix_kernel;
use hstreams::types::{BufId, EventId, StreamId};
use micsim::device::DeviceId;
use micsim::pcie::Direction;

/// Number of buffers in the fixed palette every genome addresses.
pub const N_BUFS: usize = 32;

/// Maximum streams (lanes) a genome may carry.
pub const MAX_LANES: usize = 8;

/// Maximum partitions a genome may request.
pub const MAX_PARTITIONS: usize = 4;

/// Maximum genes per lane (keeps reference interpretation cheap).
pub const MAX_GENES_PER_LANE: usize = 32;

/// Simulated work per [`Gene::Kernel`] work unit, in device work units.
pub const WORK_UNIT: f64 = 1e5;

/// Length of palette buffer `i` — small, varied, deliberately including
/// non-powers-of-two so modulo-indexed reads exercise uneven shapes.
pub fn buf_len(i: usize) -> usize {
    [4, 6, 8, 12, 16, 24, 32, 48][i % 8]
}

/// The palette lengths for all [`N_BUFS`] buffers, in id order — the
/// `lens` argument reference interpreters expect.
pub fn buf_lens() -> Vec<usize> {
    (0..N_BUFS).map(buf_len).collect()
}

/// One action in a lane, in genome encoding. Events are numbered densely
/// `0..event_count`; each id is recorded by exactly one [`Gene::Record`]
/// (enforced by [`ProgramSpec::repair`]). Barriers carry no number — the
/// `k`-th barrier gene of a lane is barrier `k`, which joins with every
/// other lane's `k`-th barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Gene {
    /// Upload palette buffer `b` to the device.
    H2D(usize),
    /// Download palette buffer `b` from the device.
    D2H(usize),
    /// A deterministic [`mix_kernel`] launch.
    Kernel {
        /// Palette buffers read (disjoint from `writes` after repair).
        reads: Vec<usize>,
        /// Palette buffers written.
        writes: Vec<usize>,
        /// Simulated cost in [`WORK_UNIT`]s (tile size; split/merge target).
        work: u32,
        /// Run on the host instead of a device partition.
        host: bool,
    },
    /// Record event `e` here.
    Record(usize),
    /// Block until event `e` has been recorded.
    Wait(usize),
    /// Join with every lane's same-ordinal barrier.
    Barrier,
}

/// Where a spliced fault plan strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Fail the transfer at `(lane, gene index)`.
    Transfer {
        /// Lane holding the doomed transfer.
        lane: usize,
        /// Gene (= action) index within the lane.
        index: usize,
    },
    /// Panic the kernel at `(lane, gene index)`.
    KernelPanic {
        /// Lane holding the doomed kernel.
        lane: usize,
        /// Gene (= action) index within the lane.
        index: usize,
    },
    /// Fail the device materialization of palette buffer `buf`.
    Alloc {
        /// The doomed buffer.
        buf: usize,
    },
}

/// A deterministic single-site fault plan spliced into a genome. `attempts`
/// is how many times the forced transfer failure re-fires — above the
/// retry budget it becomes unrecoverable on both executors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed for the plan's (here unused, rate-free) fault die.
    pub seed: u64,
    /// Forced-transfer failure attempts (≥ 1).
    pub attempts: u32,
    /// The single forced site.
    pub site: FaultSite,
}

impl FaultSpec {
    /// Lower to a runtime [`FaultPlan`]. Rates are zero — only the forced
    /// site fires, so fault behavior is a pure function of the genome.
    pub fn to_plan(&self) -> FaultPlan {
        let plan = FaultPlan::seeded(self.seed);
        match self.site {
            FaultSite::Transfer { lane, index } => plan
                .transfer_failures(0.0, self.attempts)
                .fail_transfer_at(lane, index),
            FaultSite::KernelPanic { lane, index } => plan.panic_kernel_at(lane, index),
            FaultSite::Alloc { buf } => plan.fail_alloc(buf),
        }
    }
}

/// A full program genome. See the [module docs](self) for the invariants
/// [`ProgramSpec::repair`] maintains.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramSpec {
    /// Partition count the context is built with (`1..=MAX_PARTITIONS`).
    pub partitions: usize,
    /// Partition each lane's stream is placed on (`placements[lane]`).
    pub placements: Vec<usize>,
    /// The lanes: `lanes[s]` is stream `s`'s gene sequence.
    pub lanes: Vec<Vec<Gene>>,
    /// Scheduler the executors plan with.
    pub scheduler: SchedulerKind,
    /// Optional spliced fault plan.
    pub fault: Option<FaultSpec>,
}

impl ProgramSpec {
    /// A minimal clean genome: one lane, one upload–kernel–download tile.
    pub fn minimal() -> ProgramSpec {
        ProgramSpec {
            partitions: 1,
            placements: vec![0],
            lanes: vec![vec![
                Gene::H2D(0),
                Gene::Kernel {
                    reads: vec![0],
                    writes: vec![1],
                    work: 4,
                    host: false,
                },
                Gene::D2H(1),
            ]],
            scheduler: SchedulerKind::Fifo,
            fault: None,
        }
    }

    /// Number of lanes (streams).
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Number of events (max recorded id + 1; dense after repair).
    pub fn event_count(&self) -> usize {
        self.lanes
            .iter()
            .flatten()
            .filter_map(|g| match g {
                Gene::Record(e) => Some(e + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Barrier count (max barrier genes in any lane; uniform after repair).
    pub fn barrier_count(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.iter().filter(|g| matches!(g, Gene::Barrier)).count())
            .max()
            .unwrap_or(0)
    }

    /// Total genes across all lanes.
    pub fn gene_count(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// Streams per partition this genome needs from its context: the
    /// largest number of lanes sharing one partition (at least 1).
    pub fn streams_per_partition(&self) -> usize {
        let n = self.partitions.max(1);
        let mut counts = vec![0usize; n];
        for &p in &self.placements {
            counts[p % n] += 1;
        }
        counts.into_iter().max().unwrap_or(0).max(1)
    }

    /// Lower to a runtime [`Program`]. Gene index equals action index, so
    /// [`FaultSite`] coordinates address the program directly. Kernel
    /// labels are position-derived (`k<lane>_<index>`), which makes
    /// outputs a pure function of the genome.
    pub fn to_program(&self) -> Program {
        let mut p = Program::default();
        for (i, _) in self.lanes.iter().enumerate() {
            p.streams.push(StreamRecord {
                id: StreamId(i),
                placement: StreamPlacement {
                    device: DeviceId(0),
                    partition: self.placements.get(i).copied().unwrap_or(0),
                },
                actions: vec![],
            });
        }
        p.events = vec![
            EventSite {
                stream: StreamId(0),
                action_index: 0,
            };
            self.event_count()
        ];
        for (i, genes) in self.lanes.iter().enumerate() {
            let mut next_barrier = 0usize;
            for g in genes {
                let ai = p.streams[i].actions.len();
                let action = match g {
                    Gene::H2D(b) => Action::Transfer {
                        dir: Direction::HostToDevice,
                        buf: BufId(b % N_BUFS),
                    },
                    Gene::D2H(b) => Action::Transfer {
                        dir: Direction::DeviceToHost,
                        buf: BufId(b % N_BUFS),
                    },
                    Gene::Kernel {
                        reads,
                        writes,
                        work,
                        host,
                    } => {
                        let mut desc = mix_kernel(
                            format!("k{i}_{ai}"),
                            reads.iter().map(|&b| BufId(b % N_BUFS)),
                            writes.iter().map(|&b| BufId(b % N_BUFS)),
                            f64::from(*work) * WORK_UNIT,
                        );
                        if *host {
                            desc = desc.on_host();
                        }
                        Action::Kernel(desc)
                    }
                    Gene::Record(e) => {
                        p.events[*e] = EventSite {
                            stream: StreamId(i),
                            action_index: ai,
                        };
                        Action::RecordEvent(EventId(*e))
                    }
                    Gene::Wait(e) => Action::WaitEvent(EventId(*e)),
                    Gene::Barrier => {
                        let n = next_barrier;
                        next_barrier += 1;
                        Action::Barrier(n)
                    }
                };
                p.streams[i].actions.push(action);
            }
        }
        p.barriers = self.barrier_count();
        p
    }

    /// Restore structural invariants after a mutation (or a capture):
    ///
    /// * clamp geometry: `1..=MAX_PARTITIONS` partitions, `1..=MAX_LANES`
    ///   lanes of at most [`MAX_GENES_PER_LANE`] genes, placements in
    ///   range;
    /// * clamp buffer references into the palette and make kernel
    ///   read/write sets disjoint (writes win) and duplicate-free;
    /// * renumber events densely in record order, drop duplicate records,
    ///   orphaned waits, and waits in their own record's lane (self-waits
    ///   can never complete and are rejected by `validate`);
    /// * pad every lane to the same barrier count.
    ///
    /// Idempotent; after repair, `to_program().validate()` succeeds.
    pub fn repair(&mut self) {
        self.partitions = self.partitions.clamp(1, MAX_PARTITIONS);
        if self.lanes.is_empty() {
            self.lanes.push(Vec::new());
        }
        self.lanes.truncate(MAX_LANES);
        for lane in &mut self.lanes {
            lane.truncate(MAX_GENES_PER_LANE);
        }
        self.placements.resize(self.lanes.len(), 0);
        for p in &mut self.placements {
            *p %= self.partitions;
        }

        // Buffer references into the palette; kernel sets disjoint.
        for lane in &mut self.lanes {
            for g in lane {
                match g {
                    Gene::H2D(b) | Gene::D2H(b) => *b %= N_BUFS,
                    Gene::Kernel {
                        reads,
                        writes,
                        work,
                        ..
                    } => {
                        for b in reads.iter_mut().chain(writes.iter_mut()) {
                            *b %= N_BUFS;
                        }
                        dedup_in_order(writes);
                        dedup_in_order(reads);
                        reads.retain(|b| !writes.contains(b));
                        *work = (*work).clamp(1, 1 << 10);
                    }
                    _ => {}
                }
            }
        }

        // Events: first record of an id wins and assigns the dense new id.
        let mut remap: std::collections::BTreeMap<usize, (usize, usize)> =
            std::collections::BTreeMap::new(); // old id -> (new id, record lane)
        for (li, lane) in self.lanes.iter().enumerate() {
            for g in lane {
                if let Gene::Record(e) = g {
                    let next = remap.len();
                    remap.entry(*e).or_insert((next, li));
                }
            }
        }
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            let mut recorded: Vec<bool> = vec![false; remap.len()];
            lane.retain_mut(|g| match g {
                Gene::Record(e) => match remap.get(e) {
                    Some(&(new, rl)) if rl == li && !recorded[new] => {
                        recorded[new] = true;
                        *e = new;
                        true
                    }
                    _ => false,
                },
                Gene::Wait(e) => match remap.get(e) {
                    Some(&(new, rl)) if rl != li => {
                        *e = new;
                        true
                    }
                    _ => false,
                },
                _ => true,
            });
        }

        // Fault site still meaningful? Clamp into the (possibly shrunk)
        // gene table; drop it if its lane vanished.
        if let Some(f) = &mut self.fault {
            f.attempts = f.attempts.clamp(1, 8);
            let ok = match &mut f.site {
                FaultSite::Transfer { lane, index } | FaultSite::KernelPanic { lane, index } => {
                    if let Some(l) = self.lanes.get(*lane) {
                        if l.is_empty() {
                            false
                        } else {
                            *index %= l.len();
                            true
                        }
                    } else {
                        false
                    }
                }
                FaultSite::Alloc { buf } => {
                    *buf %= N_BUFS;
                    true
                }
            };
            if !ok {
                self.fault = None;
            }
        }

        // Equalize barrier counts by padding at lane ends.
        let target = self.barrier_count();
        for lane in &mut self.lanes {
            let have = lane.iter().filter(|g| matches!(g, Gene::Barrier)).count();
            for _ in have..target {
                lane.push(Gene::Barrier);
            }
        }
    }

    /// Capture a runtime [`Program`] as a genome (structure only): kernel
    /// identities are discarded and re-encoded as [`mix_kernel`]s, devices
    /// are folded onto device 0, buffer ids wrap into the palette, and
    /// [`repair`](Self::repair) is applied. The capture preserves the
    /// *shape* — lanes, placements, transfer/kernel/sync structure — which
    /// is what seeds the corpus with realistic app skeletons.
    pub fn from_program(p: &Program, scheduler: SchedulerKind) -> ProgramSpec {
        let partitions = p
            .streams
            .iter()
            .map(|s| s.placement.partition + 1)
            .max()
            .unwrap_or(1)
            .min(MAX_PARTITIONS);
        let mut spec = ProgramSpec {
            partitions,
            placements: p
                .streams
                .iter()
                .map(|s| s.placement.partition % partitions)
                .collect(),
            lanes: p
                .streams
                .iter()
                .map(|s| {
                    s.actions
                        .iter()
                        .map(|a| match a {
                            Action::Transfer {
                                dir: Direction::HostToDevice,
                                buf,
                            } => Gene::H2D(buf.0 % N_BUFS),
                            Action::Transfer {
                                dir: Direction::DeviceToHost,
                                buf,
                            } => Gene::D2H(buf.0 % N_BUFS),
                            Action::Kernel(desc) => Gene::Kernel {
                                reads: desc.reads.iter().map(|b| b.0 % N_BUFS).collect(),
                                writes: desc.writes.iter().map(|b| b.0 % N_BUFS).collect(),
                                work: ((desc.work / WORK_UNIT).ceil() as u32).clamp(1, 1 << 10),
                                host: desc.host,
                            },
                            Action::RecordEvent(e) => Gene::Record(e.0),
                            Action::WaitEvent(e) => Gene::Wait(e.0),
                            Action::Barrier(_) => Gene::Barrier,
                        })
                        .collect()
                })
                .collect(),
            scheduler,
            fault: None,
        };
        spec.repair();
        spec
    }

    /// Serialize to the reviewable line format [`parse`](Self::parse)
    /// reads back. Stable: equal specs produce byte-equal text.
    pub fn to_text(&self) -> String {
        let mut out = String::from("streamfuzz v1\n");
        out.push_str(&format!("partitions {}\n", self.partitions));
        out.push_str(&format!("scheduler {}\n", self.scheduler.label()));
        let placements: Vec<String> = self.placements.iter().map(ToString::to_string).collect();
        out.push_str(&format!("placements {}\n", placements.join(" ")));
        for lane in &self.lanes {
            let genes: Vec<String> = lane.iter().map(gene_to_text).collect();
            out.push_str(&format!("lane {}\n", genes.join(" ; ")));
        }
        if let Some(f) = &self.fault {
            let site = match f.site {
                FaultSite::Transfer { lane, index } => format!("transfer {lane} {index}"),
                FaultSite::KernelPanic { lane, index } => format!("panic {lane} {index}"),
                FaultSite::Alloc { buf } => format!("alloc {buf}"),
            };
            out.push_str(&format!("fault {} {} {site}\n", f.seed, f.attempts));
        }
        out.push_str("end\n");
        out
    }

    /// Parse the [`to_text`](Self::to_text) format. Lines may be blank or
    /// `#`-comments. Errors name the offending line.
    pub fn parse(text: &str) -> Result<ProgramSpec, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines.next().ok_or("empty genome")?;
        if header != "streamfuzz v1" {
            return Err(format!("bad header {header:?}"));
        }
        let mut spec = ProgramSpec {
            partitions: 1,
            placements: Vec::new(),
            lanes: Vec::new(),
            scheduler: SchedulerKind::Fifo,
            fault: None,
        };
        for line in lines {
            let mut toks = line.split_whitespace();
            let key = toks.next().unwrap_or_default();
            match key {
                "end" => return Ok(spec),
                "partitions" => {
                    spec.partitions = parse_num(toks.next(), line)?;
                }
                "scheduler" => {
                    let label = toks
                        .next()
                        .ok_or_else(|| format!("bare scheduler: {line}"))?;
                    spec.scheduler = SchedulerKind::parse(label)
                        .ok_or_else(|| format!("unknown scheduler {label:?}"))?;
                }
                "placements" => {
                    spec.placements = toks
                        .map(|t| parse_num(Some(t), line))
                        .collect::<Result<_, _>>()?;
                }
                "lane" => {
                    let rest = line.strip_prefix("lane").unwrap_or("").trim();
                    let mut genes = Vec::new();
                    if !rest.is_empty() {
                        for chunk in rest.split(';') {
                            genes.push(gene_from_text(chunk.trim())?);
                        }
                    }
                    spec.lanes.push(genes);
                }
                "fault" => {
                    let seed: u64 = parse_num(toks.next(), line)?;
                    let attempts: u32 = parse_num(toks.next(), line)?;
                    let kind = toks.next().ok_or_else(|| format!("bare fault: {line}"))?;
                    let site = match kind {
                        "transfer" => FaultSite::Transfer {
                            lane: parse_num(toks.next(), line)?,
                            index: parse_num(toks.next(), line)?,
                        },
                        "panic" => FaultSite::KernelPanic {
                            lane: parse_num(toks.next(), line)?,
                            index: parse_num(toks.next(), line)?,
                        },
                        "alloc" => FaultSite::Alloc {
                            buf: parse_num(toks.next(), line)?,
                        },
                        other => return Err(format!("unknown fault site {other:?}")),
                    };
                    spec.fault = Some(FaultSpec {
                        seed,
                        attempts,
                        site,
                    });
                }
                other => return Err(format!("unknown directive {other:?}")),
            }
        }
        Err("missing `end`".to_string())
    }
}

fn dedup_in_order(v: &mut Vec<usize>) {
    let mut seen = [false; N_BUFS];
    v.retain(|&b| {
        let fresh = !seen[b % N_BUFS];
        seen[b % N_BUFS] = true;
        fresh
    });
}

fn gene_to_text(g: &Gene) -> String {
    match g {
        Gene::H2D(b) => format!("h2d {b}"),
        Gene::D2H(b) => format!("d2h {b}"),
        Gene::Record(e) => format!("rec {e}"),
        Gene::Wait(e) => format!("wait {e}"),
        Gene::Barrier => "bar".to_string(),
        Gene::Kernel {
            reads,
            writes,
            work,
            host,
        } => {
            let r: Vec<String> = reads.iter().map(ToString::to_string).collect();
            let w: Vec<String> = writes.iter().map(ToString::to_string).collect();
            format!(
                "k {} {work} r {} w {}",
                if *host { "host" } else { "dev" },
                r.join(" "),
                w.join(" ")
            )
        }
    }
}

fn gene_from_text(s: &str) -> Result<Gene, String> {
    let mut toks = s.split_whitespace();
    let key = toks.next().ok_or("empty gene")?;
    match key {
        "h2d" => Ok(Gene::H2D(parse_num(toks.next(), s)?)),
        "d2h" => Ok(Gene::D2H(parse_num(toks.next(), s)?)),
        "rec" => Ok(Gene::Record(parse_num(toks.next(), s)?)),
        "wait" => Ok(Gene::Wait(parse_num(toks.next(), s)?)),
        "bar" => Ok(Gene::Barrier),
        "k" => {
            let host = match toks.next() {
                Some("host") => true,
                Some("dev") => false,
                other => return Err(format!("bad kernel face {other:?} in {s:?}")),
            };
            let work: u32 = parse_num(toks.next(), s)?;
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            let mut into_writes = false;
            for t in toks {
                match t {
                    "r" => into_writes = false,
                    "w" => into_writes = true,
                    n => {
                        let b = parse_num(Some(n), s)?;
                        if into_writes {
                            writes.push(b);
                        } else {
                            reads.push(b);
                        }
                    }
                }
            }
            Ok(Gene::Kernel {
                reads,
                writes,
                work,
                host,
            })
        }
        other => Err(format!("unknown gene {other:?}")),
    }
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, ctx: &str) -> Result<T, String> {
    tok.ok_or_else(|| format!("missing number in {ctx:?}"))?
        .parse()
        .map_err(|_| format!("bad number in {ctx:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstreams::testutil::{build_chained, build_synced};

    fn demo() -> ProgramSpec {
        let mut s = ProgramSpec {
            partitions: 2,
            placements: vec![0, 1],
            lanes: vec![
                vec![
                    Gene::H2D(0),
                    Gene::Kernel {
                        reads: vec![0],
                        writes: vec![1],
                        work: 3,
                        host: false,
                    },
                    Gene::Record(0),
                    Gene::Barrier,
                ],
                vec![Gene::Wait(0), Gene::D2H(1), Gene::Barrier],
            ],
            scheduler: SchedulerKind::ListHeft,
            fault: Some(FaultSpec {
                seed: 7,
                attempts: 2,
                site: FaultSite::Transfer { lane: 0, index: 0 },
            }),
        };
        s.repair();
        s
    }

    #[test]
    fn repaired_specs_produce_valid_programs() {
        let s = demo();
        let p = s.to_program();
        p.validate().expect("repaired genome must validate");
        assert_eq!(p.barriers, 1);
        assert_eq!(p.events.len(), 1);
    }

    #[test]
    fn text_round_trip_is_exact() {
        let s = demo();
        let text = s.to_text();
        let back = ProgramSpec::parse(&text).expect("parse own output");
        assert_eq!(s, back);
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn repair_is_idempotent() {
        let mut a = demo();
        let b = a.clone();
        a.repair();
        assert_eq!(a, b);
    }

    #[test]
    fn repair_fixes_broken_structure() {
        let mut s = ProgramSpec {
            partitions: 99,
            placements: vec![17],
            lanes: vec![
                vec![
                    Gene::Record(5),
                    Gene::Record(5), // duplicate record: dropped
                    Gene::Wait(5),   // self-lane wait: dropped
                    Gene::Wait(9),   // orphan wait: dropped
                    Gene::H2D(1000), // clamped into palette
                    Gene::Kernel {
                        reads: vec![3, 3, 7],
                        writes: vec![3], // overlaps reads: reads lose
                        work: 0,
                        host: false,
                    },
                    Gene::Barrier,
                ],
                vec![Gene::Wait(5)],
            ],
            scheduler: SchedulerKind::Fifo,
            fault: None,
        };
        s.repair();
        assert_eq!(s.partitions, MAX_PARTITIONS);
        assert_eq!(s.event_count(), 1);
        assert_eq!(s.barrier_count(), 1);
        assert_eq!(s.lanes[1].len(), 2); // kept cross-lane wait + padded barrier
        let p = s.to_program();
        p.validate().expect("repaired");
    }

    #[test]
    fn capture_of_generated_programs_round_trips_valid() {
        for p in [
            build_synced(3, &[(0, 0), (1, 1), (2, 0)]),
            build_chained(&[2, 1], &[(0, 0)], 2, 12),
        ] {
            let spec = ProgramSpec::from_program(&p, SchedulerKind::Fifo);
            let q = spec.to_program();
            q.validate().expect("captured genome validates");
            assert_eq!(q.streams.len(), p.streams.len());
            assert_eq!(q.events.len(), p.events.len());
        }
    }

    #[test]
    fn fault_spec_lowers_to_forced_site_plan() {
        let f = FaultSpec {
            seed: 3,
            attempts: 5,
            site: FaultSite::Transfer { lane: 1, index: 0 },
        };
        let plan = f.to_plan();
        assert_eq!(plan.transfer_fail_attempts(1, 0), 5);
        assert_eq!(plan.transfer_fail_attempts(0, 0), 0);
        assert!(!plan.kernel_panics_at(0, 0));
    }
}
