//! The feedback-driven fuzzing loop.
//!
//! [`Fuzzer`] owns the corpus, the seen-signal set and the findings log.
//! Each iteration deterministically derives a parent pick and a mutation
//! seed from the fuzzer seed and the execution counter, mutates the
//! parent, and runs the child through the **cheap oracles** (checker +
//! simulator). Only children that light up a novel signal — or disagree —
//! graduate to the **full differential pass** (native executor, reference
//! interpreter, fault agreement) and are retained with their novelty
//! attached.
//!
//! Every disagreement is [shrunk](crate::shrink()) to a minimal reproducer
//! and recorded as a [`Finding`] whose serialized genome is ready to
//! commit as a regression test.
//!
//! Determinism contract: with the same [`FuzzerConfig`], the same seed
//! corpus (same order) and the same execution budget, two fuzzer
//! instances produce byte-identical corpus evolution —
//! [`Fuzzer::evolution_hash`] folds every retained entry, its operator
//! lineage, its novel signals and every finding into one number the smoke
//! gate compares across two fresh runs.

use std::collections::{BTreeMap, BTreeSet};

use hstreams::testutil::{fnv64, splitmix64};

use crate::genome::ProgramSpec;
use crate::harness::Harness;
use crate::mutate::mutate;
use crate::shrink::shrink;
use crate::signals::family;

/// Tuning for a fuzzing session.
#[derive(Clone, Copy, Debug)]
pub struct FuzzerConfig {
    /// Master seed; all per-iteration seeds derive from it.
    pub seed: u64,
    /// Run the native-side oracles on retention candidates (and on
    /// seeds). Disable for checker/sim-only loops.
    pub full_oracles: bool,
    /// Shrink disagreements before recording them.
    pub shrink_findings: bool,
    /// Serve-mode: additionally interleave each retained child with its
    /// parent as two tenants of a [`StreamService`](stream_serve) and
    /// assert isolation ([`crate::serve::serve_case`]). Serve findings
    /// are recorded unshrunk — the *pair* is the reproducer.
    pub serve_oracle: bool,
    /// Run the sync-elision optimizer oracle on every case: clean genomes
    /// must optimize with a holding certificate and execute equivalently,
    /// rejected genomes must come back untouched. On by default.
    pub opt_oracle: bool,
}

impl Default for FuzzerConfig {
    fn default() -> Self {
        FuzzerConfig {
            seed: 0x5eed_f02d,
            full_oracles: true,
            shrink_findings: true,
            serve_oracle: false,
            opt_oracle: true,
        }
    }
}

/// One retained corpus input and its retention pedigree.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Position in the corpus (stable id).
    pub id: usize,
    /// Seed label (for seeds) or `m<exec#>` (for mutants).
    pub label: String,
    /// Per-entry seed from which children's mutation seeds derive.
    pub seed: u64,
    /// Mutation operator that produced this entry (`seed` for seeds).
    pub op: &'static str,
    /// Parent corpus id, if mutated from one.
    pub parent: Option<usize>,
    /// The genome.
    pub spec: ProgramSpec,
    /// Signals this entry was first to produce.
    pub new_signals: Vec<String>,
}

/// A shrunk, reproducible oracle disagreement.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable disagreement class (see [`crate::harness::Disagreement`]).
    pub class: String,
    /// Human-readable detail from the (pre-shrink) disagreement.
    pub detail: String,
    /// Operator that produced the disagreeing child.
    pub op: String,
    /// The minimal reproducer.
    pub spec: ProgramSpec,
    /// The reproducer's serialized genome ([`ProgramSpec::to_text`]).
    pub text: String,
}

/// The coverage-guided differential fuzzer.
pub struct Fuzzer {
    /// The harness (public so callers can replay findings on it).
    pub harness: Harness,
    cfg: FuzzerConfig,
    corpus: Vec<CorpusEntry>,
    seen: BTreeSet<String>,
    findings: Vec<Finding>,
    log: Vec<String>,
    execs: u64,
}

impl Fuzzer {
    /// Fresh fuzzer; seed the corpus with [`add_seed`](Self::add_seed)
    /// before [`run`](Self::run).
    pub fn new(cfg: FuzzerConfig) -> Fuzzer {
        let mut harness = Harness::new();
        harness.opt_oracle = cfg.opt_oracle;
        Fuzzer {
            harness,
            cfg,
            corpus: Vec::new(),
            seen: BTreeSet::new(),
            findings: Vec::new(),
            log: Vec::new(),
            execs: 0,
        }
    }

    /// Add a seed genome. Seeds are always retained (repaired first), run
    /// through the full oracle stack, and credited with every signal they
    /// are first to produce.
    pub fn add_seed(&mut self, label: &str, spec: ProgramSpec) {
        let mut spec = spec;
        spec.repair();
        let out = self.harness.run_case(&spec, self.cfg.full_oracles);
        self.execs += 1;
        let new_signals: Vec<String> = out.signals.difference(&self.seen).cloned().collect();
        self.seen.extend(out.signals.iter().cloned());
        if let Some(d) = out.disagreement {
            self.record_finding(&d.class, &d.detail, "seed", &spec);
        }
        let id = self.corpus.len();
        self.log.push(format!(
            "seed {label}: +{} signals ({} total)",
            new_signals.len(),
            self.seen.len()
        ));
        self.corpus.push(CorpusEntry {
            id,
            label: label.to_string(),
            seed: splitmix64(self.cfg.seed ^ fnv64(label)),
            op: "seed",
            parent: None,
            spec,
            new_signals,
        });
    }

    /// Run `budget` mutation executions (not wall-clock bounded — the
    /// budget *is* the determinism boundary). Panics if the corpus is
    /// empty.
    pub fn run(&mut self, budget: usize) {
        assert!(!self.corpus.is_empty(), "seed the corpus before running");
        for _ in 0..budget {
            let tick = self.execs;
            let parent_idx = (splitmix64(self.cfg.seed ^ tick) as usize) % self.corpus.len();
            let mutation_seed = splitmix64(self.corpus[parent_idx].seed ^ splitmix64(tick));
            let (child, op) = mutate(&self.corpus[parent_idx].spec, mutation_seed);

            let cheap = self.harness.run_case(&child, false);
            self.execs += 1;
            let mut novel: BTreeSet<String> =
                cheap.signals.difference(&self.seen).cloned().collect();
            let mut disagreement = cheap.disagreement.clone();

            if !novel.is_empty() || disagreement.is_some() {
                // Graduate: full differential pass before retention.
                let out = if self.cfg.full_oracles {
                    let out = self.harness.run_case(&child, true);
                    self.execs += 1;
                    out
                } else {
                    cheap
                };
                novel.extend(out.signals.difference(&self.seen).cloned());
                if disagreement.is_none() {
                    disagreement = out.disagreement;
                }
                if self.cfg.serve_oracle && disagreement.is_none() {
                    let serve = crate::serve::serve_case(&child, &self.corpus[parent_idx].spec);
                    self.execs += 1;
                    novel.extend(serve.signals.difference(&self.seen).cloned());
                    if let Some(d) = serve.disagreement {
                        self.log.push(format!(
                            "SERVE DISAGREEMENT m{tick}: {} — {}",
                            d.class, d.detail
                        ));
                        // Unshrunk: the (child, parent) pair reproduces it.
                        self.findings.push(Finding {
                            class: d.class,
                            detail: d.detail,
                            op: op.to_string(),
                            text: child.to_text(),
                            spec: child.clone(),
                        });
                    }
                }
                self.seen.extend(novel.iter().cloned());
                let id = self.corpus.len();
                let new_signals: Vec<String> = novel.into_iter().collect();
                self.log.push(format!(
                    "m{tick}: {op} on #{parent_idx} +{} signals ({} total)",
                    new_signals.len(),
                    self.seen.len()
                ));
                self.corpus.push(CorpusEntry {
                    id,
                    label: format!("m{tick}"),
                    seed: mutation_seed,
                    op,
                    parent: Some(parent_idx),
                    spec: child.clone(),
                    new_signals,
                });
            }

            if let Some(d) = disagreement {
                self.log
                    .push(format!("DISAGREEMENT m{tick}: {} — {}", d.class, d.detail));
                self.record_finding(&d.class, &d.detail, op, &child);
            }
        }
    }

    fn record_finding(&mut self, class: &str, detail: &str, op: &str, spec: &ProgramSpec) {
        let minimal = if self.cfg.shrink_findings {
            shrink(&mut self.harness, spec, class, self.cfg.full_oracles)
        } else {
            spec.clone()
        };
        self.findings.push(Finding {
            class: class.to_string(),
            detail: detail.to_string(),
            op: op.to_string(),
            text: minimal.to_text(),
            spec: minimal,
        });
    }

    /// Executions performed (cheap and full passes both count).
    pub fn execs(&self) -> u64 {
        self.execs
    }

    /// The retained corpus, in retention order.
    pub fn corpus(&self) -> &[CorpusEntry] {
        &self.corpus
    }

    /// All distinct signals seen so far.
    pub fn seen_signals(&self) -> &BTreeSet<String> {
        &self.seen
    }

    /// Signal counts per family — the smoke gate's breadth check.
    pub fn families(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for s in &self.seen {
            *out.entry(family(s).to_string()).or_insert(0) += 1;
        }
        out
    }

    /// Shrunk disagreements found so far.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// The narrative log: seeds, retentions, disagreements.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Fold the entire observable state — every retained entry's label,
    /// operator, parent, serialized genome and novel signals, plus every
    /// finding — into one hash. Two runs with identical config, seeds and
    /// budget must produce identical hashes; the smoke binary enforces
    /// this.
    pub fn evolution_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |s: &str| {
            h ^= fnv64(s);
            h = splitmix64(h);
        };
        for e in &self.corpus {
            eat(&e.label);
            eat(e.op);
            eat(&format!("{:?}", e.parent));
            eat(&e.spec.to_text());
            for s in &e.new_signals {
                eat(s);
            }
        }
        for f in &self.findings {
            eat(&f.class);
            eat(&f.text);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstreams::sched::SchedulerKind;
    use hstreams::testutil::{build_chained, build_synced};

    fn seeded(budget: usize) -> Fuzzer {
        let cfg = FuzzerConfig {
            seed: 99,
            full_oracles: false, // keep unit tests fast; integration covers full
            shrink_findings: true,
            serve_oracle: false,
            opt_oracle: true,
        };
        let mut f = Fuzzer::new(cfg);
        f.add_seed("minimal", ProgramSpec::minimal());
        f.add_seed(
            "synced3",
            ProgramSpec::from_program(
                &build_synced(3, &[(0, 0), (1, 1), (2, 0)]),
                SchedulerKind::Fifo,
            ),
        );
        f.add_seed(
            "chained",
            ProgramSpec::from_program(
                &build_chained(&[2, 1], &[(0, 0)], 2, 12),
                SchedulerKind::ListHeft,
            ),
        );
        f.run(budget);
        f
    }

    #[test]
    fn corpus_evolution_is_deterministic() {
        let a = seeded(60);
        let b = seeded(60);
        assert_eq!(a.evolution_hash(), b.evolution_hash());
        assert_eq!(a.corpus().len(), b.corpus().len());
        assert_eq!(a.seen_signals(), b.seen_signals());
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn fuzzing_discovers_multiple_signal_families() {
        let f = seeded(120);
        let families = f.families();
        assert!(
            families.len() >= 4,
            "expected ≥4 signal families, got {families:?}"
        );
        assert!(
            f.corpus().len() > 3,
            "mutation should retain novel inputs beyond the seeds"
        );
    }

    #[test]
    fn oracles_agree_on_everything_the_loop_generates() {
        let f = seeded(120);
        assert!(
            f.findings().is_empty(),
            "cheap-oracle disagreements found: {:?}",
            f.findings()
                .iter()
                .map(|x| (&x.class, &x.detail))
                .collect::<Vec<_>>()
        );
    }
}
