//! The four-oracle differential harness.
//!
//! [`Harness::run_case`] runs one genome through the static checker, the
//! simulator, the [sync-elision optimizer](hstreams::opt), and (on `full`
//! runs) the native executor plus the [`RefExec`] reference interpreter,
//! enforcing both directions of the contract:
//!
//! * **clean** (no error diagnostics): the simulator must price the
//!   program twice with byte-identical metric exports; the native
//!   executor must run it twice with bit-identical buffer contents, agree
//!   bit-for-bit with the reference interpreter, and export the same
//!   metric catalog the simulator does; a spliced fault plan must resolve
//!   to the same outcome class (recovered / fault / panic) on both
//!   executors;
//! * **rejected** (error diagnostics): both executors must refuse with a
//!   checker report, and the diagnostic's
//!   [witness](hstreams::check::HazardWitness) must be demonstrable — a
//!   deadlock witness wedges the FIFO interpretation, a race witness's
//!   two schedules replay with the racing pair in both orders.
//!
//! The optimizer oracle rides both directions: a clean genome must
//! optimize with a holding equivalence [certificate](hstreams::opt::Certificate),
//! interpret to the same reference state as the original, re-install and
//! simulate clean, and (on `full` runs, when anything was elided) leave
//! bit-identical native buffers; a rejected genome must come back from
//! the optimizer untouched.
//!
//! Any violation is a [`Disagreement`], tagged with a stable class name
//! that shrinking preserves. Contexts are cached per geometry — every
//! genome addresses the same fixed buffer palette, so one context serves
//! arbitrarily many cases, and [`Context::zero_buffers`] resets state
//! between native runs.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hstreams::check::WitnessKind;
use hstreams::context::Context;
use hstreams::executor::native::NativeConfig;
use hstreams::testutil::RefExec;
use hstreams::types::{BufId, Error};
use micsim::PlatformConfig;

use crate::genome::{buf_len, buf_lens, ProgramSpec, N_BUFS};
use crate::signals::{
    check_signals, fault_signals, metrics_signals, overlap_signals, sched_signals,
};

/// A violated oracle contract: `class` is stable across shrinking (the
/// reproducer must fail the same way), `detail` is for humans.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// Stable class, e.g. `native-ref-divergence`, `witness-deadlock-completed`.
    pub class: String,
    /// Human-readable specifics.
    pub detail: String,
}

/// Everything one case produced: its coverage signals, whether the
/// checker rejected it, and the first contract violation (if any).
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Coverage signals for corpus retention.
    pub signals: BTreeSet<String>,
    /// The checker found error-severity diagnostics.
    pub rejected: bool,
    /// First contract violation observed, if any.
    pub disagreement: Option<Disagreement>,
}

/// Geometry-keyed context cache plus the differential logic.
pub struct Harness {
    ctxs: BTreeMap<(usize, usize), Context>,
    /// Run the sync-elision optimizer oracle on every case (on by
    /// default; [`FuzzerConfig`](crate::FuzzerConfig) threads its knob
    /// through here).
    pub opt_oracle: bool,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// An empty harness; contexts are built lazily per geometry.
    pub fn new() -> Harness {
        Harness {
            ctxs: BTreeMap::new(),
            opt_oracle: true,
        }
    }

    /// Number of live cached contexts (bounded by the geometry space:
    /// partitions × streams-per-partition combinations).
    pub fn context_count(&self) -> usize {
        self.ctxs.len()
    }

    /// Run one genome through the oracles. `full` additionally runs the
    /// native executor (twice), the reference interpreter, metric-catalog
    /// parity and fault-outcome agreement; without it only the cheap
    /// oracles (checker + simulator) run — the fuzzer's inner loop.
    pub fn run_case(&mut self, spec: &ProgramSpec, full: bool) -> CaseOutcome {
        let partitions = spec.partitions.max(1);
        let spp = spec.streams_per_partition();
        let ctx = self
            .ctxs
            .entry((partitions, spp))
            .or_insert_with(|| build_ctx(partitions, spp));
        run_case_in(ctx, spec, full, self.opt_oracle)
    }
}

fn build_ctx(partitions: usize, spp: usize) -> Context {
    let mut ctx = Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .streams_per_partition(spp)
        .metrics(true)
        .build()
        .expect("fuzz geometry is within platform limits");
    for i in 0..N_BUFS {
        ctx.alloc(format!("b{i}"), buf_len(i));
    }
    ctx
}

/// Outcome class of an executor result, for class-level agreement (the
/// executors legitimately differ in *which* typed error a hazard
/// surfaces as — e.g. an injected kernel panic is `PartitionLost` on the
/// simulator and `KernelPanicked` natively — but must agree on the class).
fn error_class(e: &Error) -> &'static str {
    match e {
        Error::Check(_) => "check",
        Error::Fault { .. } => "fault",
        Error::KernelPanicked { .. } | Error::PartitionLost { .. } => "panic",
        Error::MissingNativeBody { .. } => "native-body",
        Error::UnknownBuffer(_) | Error::UnknownEvent(_) | Error::UnknownStream(_) => "unknown-ref",
        Error::Config(_) => "config",
        _ => "other",
    }
}

fn run_case_in(ctx: &mut Context, spec: &ProgramSpec, full: bool, opt: bool) -> CaseOutcome {
    let program = spec.to_program();
    let mut signals: BTreeSet<String> = BTreeSet::new();
    let mut disagreement: Option<Disagreement> = None;
    let disagree = |d: &mut Option<Disagreement>, class: &str, detail: String| {
        if d.is_none() {
            *d = Some(Disagreement {
                class: class.to_string(),
                detail,
            });
        }
    };

    ctx.set_scheduler(spec.scheduler);
    if let Err(e) = ctx.install_program(program.clone()) {
        // Repair guarantees validity, so installation failures are
        // structural coverage, not contract violations.
        signals.insert(format!("check:install-{}", error_class(&e)));
        return CaseOutcome {
            signals,
            rejected: true,
            disagreement: None,
        };
    }

    let analysis = ctx.analyze();
    signals.extend(check_signals(&analysis.report));
    signals.extend(sched_signals(spec.scheduler, ctx.plan_schedule().as_ref()));
    let summary = analysis.overlap_summary();
    let mut hidden_fraction = None;
    let rejected = analysis.report.error_count() > 0;

    if !rejected {
        // ---- clean direction: both executors run, deterministically ----
        match ctx.run_sim() {
            Err(e) => disagree(
                &mut disagreement,
                "clean-sim-refused",
                format!("checker passed but sim failed: {e:?}"),
            ),
            Ok(s1) => {
                hidden_fraction = Some(s1.overlap().hidden_fraction());
                if let Some(m) = &s1.metrics {
                    signals.extend(metrics_signals(m));
                }
                match ctx.run_sim() {
                    Err(e) => disagree(
                        &mut disagreement,
                        "sim-nondeterminism",
                        format!("second sim run failed: {e:?}"),
                    ),
                    Ok(s2) => {
                        let same_makespan = s1.makespan() == s2.makespan();
                        let same_metrics = match (&s1.metrics, &s2.metrics) {
                            (Some(a), Some(b)) => a.to_jsonl() == b.to_jsonl(),
                            (None, None) => true,
                            _ => false,
                        };
                        if !same_makespan || !same_metrics {
                            disagree(
                                &mut disagreement,
                                "sim-nondeterminism",
                                format!(
                                    "repeat sim diverged (makespan {:?} vs {:?})",
                                    s1.makespan(),
                                    s2.makespan()
                                ),
                            );
                        }
                    }
                }
                if full && disagreement.is_none() {
                    native_differential(ctx, spec, &program, &s1, &mut signals, &mut disagreement);
                }
            }
        }
        // ---- fault-outcome agreement -------------------------------------
        if let Some(f) = spec.fault {
            let plan = f.to_plan();
            let sim_class = match ctx.run_sim_faulted(&plan) {
                Ok(_) => "ok",
                Err(e) => error_class(&e),
            };
            signals.insert(format!("fault:sim:{sim_class}"));
            if full {
                ctx.zero_buffers();
                let cfg = NativeConfig {
                    fault: Some(Arc::new(f.to_plan())),
                    ..NativeConfig::default()
                };
                let native = ctx.run_native_with(&cfg);
                let native_class = match &native {
                    Ok(_) => "ok",
                    Err(e) => error_class(e),
                };
                if let Ok(r) = &native {
                    signals.extend(fault_signals(&r.faults));
                }
                if sim_class != native_class {
                    disagree(
                        &mut disagreement,
                        "fault-divergence",
                        format!(
                            "fault {:?}: sim outcome {sim_class}, native outcome {native_class}",
                            f.site
                        ),
                    );
                }
                ctx.zero_buffers();
            }
        }
    } else {
        // ---- rejected direction: both refuse, and the claim replays ----
        match ctx.run_sim() {
            Err(Error::Check(_)) => {
                signals.insert("reject:sim".to_string());
            }
            Err(e) => disagree(
                &mut disagreement,
                "reject-sim-class",
                format!("checker rejected but sim failed as {:?}", error_class(&e)),
            ),
            Ok(_) => disagree(
                &mut disagreement,
                "rejected-sim-ran",
                "checker rejected the program but the simulator executed it".to_string(),
            ),
        }
        if full {
            ctx.zero_buffers();
            match ctx.run_native() {
                Err(Error::Check(_)) => {
                    signals.insert("reject:native".to_string());
                }
                Err(e) => disagree(
                    &mut disagreement,
                    "reject-native-class",
                    format!(
                        "checker rejected but native failed as {:?}",
                        error_class(&e)
                    ),
                ),
                Ok(_) => disagree(
                    &mut disagreement,
                    "rejected-native-ran",
                    "checker rejected the program but the native executor ran it".to_string(),
                ),
            }
            ctx.zero_buffers();
        }
        if let Some(diag) = analysis.report.errors().next() {
            let w = analysis.witness(&program, diag);
            let lens = buf_lens();
            match &w.kind {
                WitnessKind::Deadlock { cycle } => match RefExec::run_fifo(&program, &lens) {
                    Err(_) => {
                        signals.insert("witness:deadlock-wedged".to_string());
                    }
                    Ok(_) => disagree(
                        &mut disagreement,
                        "witness-deadlock-completed",
                        format!(
                            "deadlock claimed on cycle {cycle:?} but FIFO interpretation completed"
                        ),
                    ),
                },
                WitnessKind::Race {
                    a,
                    b,
                    order_ab,
                    order_ba,
                } => {
                    let total = program.action_count();
                    if order_ab.len() == total && order_ba.len() == total {
                        let pos = |order: &[hstreams::check::Site],
                                   s: &hstreams::check::Site|
                         -> Option<usize> {
                            order.iter().position(|x| x == s)
                        };
                        let ab_ok = pos(order_ab, a) < pos(order_ab, b);
                        let ba_ok = pos(order_ba, b) < pos(order_ba, a);
                        if !(ab_ok && ba_ok && pos(order_ab, a).is_some()) {
                            disagree(
                                &mut disagreement,
                                "witness-order-invalid",
                                format!("race witness orders do not bracket the pair {a} / {b}"),
                            );
                        } else {
                            let sab = RefExec::run_order(&program, &lens, order_ab);
                            let sba = RefExec::run_order(&program, &lens, order_ba);
                            if sab.fingerprint() != sba.fingerprint() {
                                signals.insert("witness:race-observable".to_string());
                            } else {
                                signals.insert("witness:race-benign".to_string());
                            }
                        }
                    } else {
                        // Cyclic graph elsewhere: the orders are partial by
                        // construction; the deadlock diagnostic carries the
                        // executable witness instead.
                        signals.insert("witness:race-partial".to_string());
                    }
                }
                WitnessKind::Structural => {
                    signals.insert("witness:structural".to_string());
                }
            }
        }
    }

    if opt {
        opt_oracle(
            ctx,
            &program,
            rejected,
            full,
            &mut signals,
            &mut disagreement,
        );
    }

    signals.extend(overlap_signals(&summary, hidden_fraction));
    CaseOutcome {
        signals,
        rejected,
        disagreement,
    }
}

/// The fourth oracle: the sync-elision optimizer must be provably
/// semantics-preserving on clean genomes and must refuse rejected ones
/// untouched. Runs last so fault-plan agreement still sees the original
/// program's sites; leaves the optimized program installed on the cheap
/// tier (every case re-installs its own program first).
fn opt_oracle(
    ctx: &mut Context,
    program: &hstreams::program::Program,
    rejected: bool,
    full: bool,
    signals: &mut BTreeSet<String>,
    disagreement: &mut Option<Disagreement>,
) {
    let disagree = |d: &mut Option<Disagreement>, class: &str, detail: String| {
        if d.is_none() {
            *d = Some(Disagreement {
                class: class.to_string(),
                detail,
            });
        }
    };
    let optimized = hstreams::opt::optimize(program, &ctx.check_env());

    if rejected {
        if !optimized.report.skipped || optimized.report.elided_actions() > 0 {
            disagree(
                disagreement,
                "opt-touched-rejected",
                format!(
                    "optimizer edited a checker-rejected program ({} action(s) elided)",
                    optimized.report.elided_actions()
                ),
            );
        } else {
            signals.insert("opt:refused".to_string());
        }
        return;
    }

    if optimized.report.skipped {
        disagree(
            disagreement,
            "opt-skipped-clean",
            "checker passed but the optimizer refused the program".to_string(),
        );
        return;
    }
    if optimized.report.reverted {
        disagree(
            disagreement,
            "opt-reverted",
            "optimizer reverted its own edits on a clean program".to_string(),
        );
        return;
    }
    match &optimized.report.certificate {
        Some(c) if c.holds() => {}
        other => {
            disagree(
                disagreement,
                "opt-certificate",
                format!("equivalence certificate missing or violated: {other:?}"),
            );
            return;
        }
    }
    signals.insert(
        if optimized.report.elided_actions() > 0 {
            "opt:elided"
        } else {
            "opt:noop"
        }
        .to_string(),
    );

    // Reference equivalence: the FIFO interpretations of the original and
    // the optimized program must end in the same state, bit for bit.
    let lens = buf_lens();
    let orig_ref = match RefExec::run_fifo(program, &lens) {
        Ok(r) => r,
        Err(stuck) => {
            disagree(
                disagreement,
                "opt-ref-wedged",
                format!(
                    "original clean program wedged the interpreter: {:?}",
                    stuck.frontier
                ),
            );
            return;
        }
    };
    match RefExec::run_fifo(&optimized.program, &lens) {
        Err(stuck) => disagree(
            disagreement,
            "opt-ref-wedged",
            format!(
                "optimized program wedged the interpreter: {:?}",
                stuck.frontier
            ),
        ),
        Ok(opt_ref) => {
            if ref_bits(&orig_ref) != ref_bits(&opt_ref)
                || orig_ref.fingerprint() != opt_ref.fingerprint()
            {
                disagree(
                    disagreement,
                    "opt-ref-divergence",
                    format!(
                        "reference states differ after elision in buffers {:?}",
                        diff_bufs(&ref_bits(&orig_ref), &ref_bits(&opt_ref))
                    ),
                );
            }
        }
    }
    if disagreement.is_some() {
        return;
    }

    // The optimized program must re-install and simulate clean.
    if let Err(e) = ctx.install_program(optimized.program.clone()) {
        disagree(
            disagreement,
            "opt-install-refused",
            format!("optimized program failed installation: {e:?}"),
        );
        return;
    }
    if let Err(e) = ctx.run_sim() {
        disagree(
            disagreement,
            "opt-sim-refused",
            format!("optimized program failed simulation: {e:?}"),
        );
        return;
    }

    // Native bit-identity, only when something was actually elided (a
    // no-op optimization returns the byte-identical program).
    if full && optimized.report.elided_actions() > 0 {
        ctx.zero_buffers();
        match ctx.run_native() {
            Err(e) => disagree(
                disagreement,
                "opt-native-refused",
                format!("optimized program failed natively: {e:?}"),
            ),
            Ok(_) => {
                let bits_opt = ctx_bits(ctx);
                if ctx.install_program(program.clone()).is_ok() {
                    ctx.zero_buffers();
                    if ctx.run_native().is_ok() {
                        let bits_orig = ctx_bits(ctx);
                        if bits_opt != bits_orig {
                            disagree(
                                disagreement,
                                "opt-native-divergence",
                                format!(
                                    "native buffers diverge after elision: {:?}",
                                    diff_bufs(&bits_orig, &bits_opt)
                                ),
                            );
                        } else {
                            signals.insert("diff:opt-native-agree".to_string());
                        }
                    }
                }
            }
        }
        ctx.zero_buffers();
    }
}

/// The native-side clean checks: two runs bit-identical, agreement with
/// the reference interpreter, metric-catalog parity against the sim run.
fn native_differential(
    ctx: &mut Context,
    spec: &ProgramSpec,
    program: &hstreams::program::Program,
    sim: &hstreams::executor::sim::SimReport,
    signals: &mut BTreeSet<String>,
    disagreement: &mut Option<Disagreement>,
) {
    let disagree = |d: &mut Option<Disagreement>, class: &str, detail: String| {
        if d.is_none() {
            *d = Some(Disagreement {
                class: class.to_string(),
                detail,
            });
        }
    };
    ctx.zero_buffers();
    let n1 = match ctx.run_native() {
        Err(e) => {
            disagree(
                disagreement,
                "clean-native-refused",
                format!("checker passed but native failed: {e:?}"),
            );
            ctx.zero_buffers();
            return;
        }
        Ok(r) => r,
    };
    let bits1 = ctx_bits(ctx);
    if let (Some(nm), Some(sm)) = (&n1.metrics, &sim.metrics) {
        let mut ns = nm.series_names();
        let mut ss = sm.series_names();
        ns.sort();
        ns.dedup();
        ss.sort();
        ss.dedup();
        if nm.instrument_names() != sm.instrument_names() || ns != ss {
            disagree(
                disagreement,
                "metrics-parity",
                format!(
                    "instrument/series catalogs diverge: native {}x{}, sim {}x{}",
                    nm.instrument_names().len(),
                    ns.len(),
                    sm.instrument_names().len(),
                    ss.len()
                ),
            );
        }
    }
    ctx.zero_buffers();
    match ctx.run_native() {
        Err(e) => disagree(
            disagreement,
            "native-nondeterminism",
            format!("second native run failed: {e:?}"),
        ),
        Ok(_) => {
            let bits2 = ctx_bits(ctx);
            if bits1 != bits2 {
                disagree(
                    disagreement,
                    "native-nondeterminism",
                    format!(
                        "repeat native runs differ in buffers {:?} (scheduler {})",
                        diff_bufs(&bits1, &bits2),
                        spec.scheduler.label()
                    ),
                );
            } else {
                match RefExec::run_fifo(program, &buf_lens()) {
                    Err(stuck) => disagree(
                        disagreement,
                        "clean-ref-wedged",
                        format!(
                            "checker passed but reference interpretation wedged: {:?}",
                            stuck.frontier
                        ),
                    ),
                    Ok(reference) => {
                        let rbits = ref_bits(&reference);
                        if rbits != bits2 {
                            disagree(
                                disagreement,
                                "native-ref-divergence",
                                format!(
                                    "native and reference states differ in buffers {:?}",
                                    diff_bufs(&rbits, &bits2)
                                ),
                            );
                        } else {
                            signals.insert("diff:native-ref-agree".to_string());
                        }
                    }
                }
            }
        }
    }
    ctx.zero_buffers();
}

type BufBits = Vec<(Vec<u32>, Vec<u32>)>;

/// Bit-exact `(host, device)` contents of every palette buffer. Lazy
/// (never-materialized) storage normalizes to zeros of the palette
/// length, matching the runtime's read semantics.
fn ctx_bits(ctx: &Context) -> BufBits {
    (0..N_BUFS)
        .map(|i| {
            let b = ctx.buffer(BufId(i)).expect("palette buffer exists");
            let norm = |v: &[f32]| -> Vec<u32> {
                if v.is_empty() {
                    vec![0f32.to_bits(); buf_len(i)]
                } else {
                    v.iter().map(|x| x.to_bits()).collect()
                }
            };
            let host = norm(b.host.read().as_slice());
            let dev = norm(b.device.read().as_slice());
            (host, dev)
        })
        .collect()
}

fn ref_bits(r: &RefExec) -> BufBits {
    (0..N_BUFS)
        .map(|i| {
            (
                r.host[i].iter().map(|x| x.to_bits()).collect(),
                r.device[0][i].iter().map(|x| x.to_bits()).collect(),
            )
        })
        .collect()
}

fn diff_bufs(a: &BufBits, b: &BufBits) -> Vec<usize> {
    a.iter()
        .zip(b.iter())
        .enumerate()
        .filter(|(_, (x, y))| x != y)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{FaultSite, FaultSpec, Gene};
    use hstreams::sched::SchedulerKind;

    fn two_lane_synced() -> ProgramSpec {
        let mut s = ProgramSpec {
            partitions: 2,
            placements: vec![0, 1],
            lanes: vec![
                vec![
                    Gene::H2D(0),
                    Gene::Kernel {
                        reads: vec![0],
                        writes: vec![1],
                        work: 3,
                        host: false,
                    },
                    Gene::Record(0),
                ],
                vec![Gene::Wait(0), Gene::D2H(1)],
            ],
            scheduler: SchedulerKind::Fifo,
            fault: None,
        };
        s.repair();
        s
    }

    #[test]
    fn clean_case_upholds_the_full_contract() {
        let mut h = Harness::new();
        let out = h.run_case(&two_lane_synced(), true);
        assert!(!out.rejected, "synced two-lane genome is clean");
        assert!(
            out.disagreement.is_none(),
            "contract must hold: {:?}",
            out.disagreement
        );
        assert!(out.signals.contains("check:clean"));
        assert!(out.signals.contains("diff:native-ref-agree"));
    }

    #[test]
    fn racy_case_is_rejected_with_an_observable_witness() {
        let mut s = two_lane_synced();
        // Remove the wait: the d2h now races the producer's kernel write.
        s.lanes[1].remove(0);
        s.repair();
        let mut h = Harness::new();
        let out = h.run_case(&s, true);
        assert!(out.rejected, "dropped wait must be rejected");
        assert!(
            out.disagreement.is_none(),
            "refusal is contract-conforming: {:?}",
            out.disagreement
        );
        assert!(out.signals.contains("reject:sim"));
        assert!(out.signals.contains("reject:native"));
    }

    #[test]
    fn deadlock_case_witnesses_a_wedge() {
        let mut s = ProgramSpec {
            partitions: 2,
            placements: vec![0, 1],
            lanes: vec![
                vec![Gene::Wait(1), Gene::Record(0)],
                vec![Gene::Wait(0), Gene::Record(1)],
            ],
            scheduler: SchedulerKind::Fifo,
            fault: None,
        };
        s.repair();
        let mut h = Harness::new();
        let out = h.run_case(&s, true);
        assert!(out.rejected);
        assert!(out.disagreement.is_none(), "{:?}", out.disagreement);
        assert!(out.signals.contains("witness:deadlock-wedged"));
    }

    #[test]
    fn forced_transfer_fault_agrees_across_executors() {
        for attempts in [1u32, 6] {
            let mut s = two_lane_synced();
            s.fault = Some(FaultSpec {
                seed: 11,
                attempts,
                site: FaultSite::Transfer { lane: 0, index: 0 },
            });
            s.repair();
            let mut h = Harness::new();
            let out = h.run_case(&s, true);
            assert!(
                out.disagreement.is_none(),
                "attempts={attempts}: {:?}",
                out.disagreement
            );
            let has_fault_signal = out.signals.iter().any(|x| x.starts_with("fault:"));
            assert!(
                has_fault_signal,
                "fault family must light up: {:?}",
                out.signals
            );
        }
    }

    #[test]
    fn optimizer_oracle_elides_a_duplicated_wait_and_agrees() {
        let mut s = two_lane_synced();
        // A second wait on the same event is redundant by construction.
        s.lanes[1].insert(1, Gene::Wait(0));
        s.repair();
        let mut h = Harness::new();
        let out = h.run_case(&s, true);
        assert!(!out.rejected, "duplicated wait is still clean");
        assert!(out.disagreement.is_none(), "{:?}", out.disagreement);
        assert!(
            out.signals.contains("opt:elided"),
            "the duplicate must be elided: {:?}",
            out.signals
        );
        assert!(out.signals.contains("diff:opt-native-agree"));
    }

    #[test]
    fn optimizer_oracle_is_a_noop_on_minimal_programs_and_refuses_racy_ones() {
        let mut h = Harness::new();
        let clean = h.run_case(&two_lane_synced(), false);
        assert!(clean.signals.contains("opt:noop"), "{:?}", clean.signals);

        let mut racy = two_lane_synced();
        racy.lanes[1].remove(0);
        racy.repair();
        let out = h.run_case(&racy, false);
        assert!(out.rejected);
        assert!(out.disagreement.is_none(), "{:?}", out.disagreement);
        assert!(out.signals.contains("opt:refused"), "{:?}", out.signals);
    }

    #[test]
    fn scheduler_variants_keep_the_clean_contract() {
        for kind in SchedulerKind::all() {
            let mut s = two_lane_synced();
            s.scheduler = kind;
            let mut h = Harness::new();
            let out = h.run_case(&s, true);
            assert!(
                out.disagreement.is_none(),
                "{}: {:?}",
                kind.label(),
                out.disagreement
            );
        }
    }
}
