//! Coverage signals: the novelty metric that decides corpus retention.
//!
//! A *signal* is a short stable string like `check:race@s2`,
//! `overlap:pairs:8`, `metrics:catalog:19x42` or `fault:retries+failed`.
//! The fuzzer keeps a child genome only when its run produces a signal the
//! corpus has never seen — a LibAFL-style feedback loop, except the
//! "coverage map" is semantic: checker diagnostics and sites, overlap
//! shapes, metric-catalog deltas, fault-counter and steal patterns,
//! scheduler outcomes.
//!
//! Signals are grouped into *families* by their prefix up to the first
//! `:` ([`family`]); the smoke gate requires several distinct families to
//! light up, which catches a fuzzer that silently stopped exercising one
//! of the oracles.
//!
//! Numeric signals are bucketed ([`bucket`]: 0, 1, 2, 4, 8, … powers of
//! two; [`decile`] for fractions) so the signal space stays finite and
//! saturates — retention then stops, which is what bounds corpus growth.

use std::collections::BTreeSet;

use hstreams::check::{CheckReport, OverlapSummary};
use hstreams::fault::FaultCounters;
use hstreams::metrics::MetricsSnapshot;
use hstreams::sched::{Schedule, SchedulerKind};
use hstreams::testutil::fnv64;

/// The family prefix of a signal (up to the first `:`).
pub fn family(signal: &str) -> &str {
    signal.split(':').next().unwrap_or(signal)
}

/// Power-of-two bucket: 0 → 0, otherwise the largest power of two ≤ `n`.
pub fn bucket(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Decile bucket of a fraction, clamped to `0..=10`.
pub fn decile(f: f64) -> usize {
    ((f * 10.0).floor().clamp(0.0, 10.0)) as usize
}

/// Checker-family signals: one per diagnostic (code name at its primary
/// site's stream), or `check:clean`.
pub fn check_signals(report: &CheckReport) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for d in report.errors().chain(report.warnings()) {
        out.insert(format!("check:{}@s{}", d.code.name(), d.site.stream.0));
    }
    if out.is_empty() {
        out.insert("check:clean".to_string());
    }
    out
}

/// Overlap-shape signals: bucketed concurrent transfer/kernel pair count
/// from the static happens-before analysis, plus (when a simulated run is
/// available) the decile of the transfer time hidden behind compute.
pub fn overlap_signals(summary: &OverlapSummary, hidden_fraction: Option<f64>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    out.insert(format!(
        "overlap:pairs:{}",
        bucket(summary.concurrent_transfer_kernel_pairs)
    ));
    out.insert(format!(
        "overlap:mix:{}t{}k",
        bucket(summary.transfers),
        bucket(summary.kernels)
    ));
    if let Some(hf) = hidden_fraction {
        out.insert(format!("overlap:hidden:{}", decile(hf)));
    }
    out
}

/// Metrics-catalog signals: instrument × series counts plus a shape hash
/// over the sorted series names, so a new label combination registers as
/// novel even at equal counts.
pub fn metrics_signals(snap: &MetricsSnapshot) -> BTreeSet<String> {
    let instruments = snap.instrument_names();
    let mut series = snap.series_names();
    series.sort();
    series.dedup();
    let mut out = BTreeSet::new();
    out.insert(format!(
        "metrics:catalog:{}x{}",
        instruments.len(),
        series.len()
    ));
    out.insert(format!(
        "metrics:shape:{:08x}",
        fnv64(&series.join(",")) as u32
    ));
    out
}

/// Fault-counter pattern: the set of nonzero counters, joined — e.g.
/// `fault:retries+failed`. An all-zero counter block under an armed plan
/// is itself a distinct (and suspicious) signal.
pub fn fault_signals(c: &FaultCounters) -> BTreeSet<String> {
    let mut nonzero = Vec::new();
    for (name, v) in [
        ("retries", c.transfer_retries),
        ("failed", c.transfers_failed),
        ("injected-panics", c.injected_kernel_panics),
        ("panics", c.kernel_panics),
        ("lost", c.lost_partitions),
        ("skipped", c.skipped_actions),
        ("alloc", c.alloc_faults),
        ("degraded", c.degraded_runs),
        ("replayed", c.replayed_actions),
    ] {
        if v > 0 {
            nonzero.push(name);
        }
    }
    let pattern = if nonzero.is_empty() {
        "quiet".to_string()
    } else {
        nonzero.join("+")
    };
    [format!("fault:{pattern}")].into_iter().collect()
}

/// Scheduler signals: whether `kind` planned or declined, and the bucketed
/// *planned* steal count (the deterministic plan-time number — native
/// runtime steal counts are timing-dependent and excluded by design).
pub fn sched_signals(kind: SchedulerKind, planned: Option<&Schedule>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    match planned {
        Some(s) => {
            out.insert(format!("sched:{}:planned", kind.label()));
            out.insert(format!(
                "sched:{}:steals:{}",
                kind.label(),
                bucket(s.steals)
            ));
        }
        None => {
            out.insert(format!("sched:{}:declined", kind.label()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_coarse_and_monotone() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(8), 8);
        assert_eq!(bucket(1000), 512);
        assert_eq!(decile(0.0), 0);
        assert_eq!(decile(0.55), 5);
        assert_eq!(decile(1.0), 10);
        assert_eq!(decile(7.3), 10);
    }

    #[test]
    fn families_split_on_first_colon() {
        assert_eq!(family("check:race@s2"), "check");
        assert_eq!(family("sched:heft:steals:4"), "sched");
        assert_eq!(family("bare"), "bare");
    }

    #[test]
    fn fault_patterns_name_nonzero_counters() {
        let quiet = FaultCounters::default();
        assert!(fault_signals(&quiet).contains("fault:quiet"));
        let counters = FaultCounters {
            transfer_retries: 3,
            transfers_failed: 1,
            ..FaultCounters::default()
        };
        assert!(fault_signals(&counters).contains("fault:retries+failed"));
    }
}
