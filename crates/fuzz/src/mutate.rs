//! Deterministic genome mutations.
//!
//! [`mutate`] applies one randomly chosen operator from [`OPS`] and then
//! [`ProgramSpec::repair`]s the result, so every child is structurally
//! valid. All randomness flows from the caller's seed through the
//! splitmix64-based [`Rng`] — no global state, no wall clock — which is
//! what makes corpus evolution reproducible from the corpus entries
//! alone.
//!
//! Operators cover the mutation surface the differential harness cares
//! about: synchronization edges (waits, record-events, barriers), stream
//! placement, tile shape (split/add/drop), buffer conflict structure,
//! scheduler kind, and fault-plan splicing. Each operator degrades to a
//! no-op when the genome lacks the material it needs (e.g. dropping a
//! wait from a wait-free genome), so the operator table needs no
//! precondition bookkeeping.

use hstreams::sched::SchedulerKind;
use hstreams::testutil::splitmix64;

use crate::genome::{FaultSite, FaultSpec, Gene, ProgramSpec, MAX_PARTITIONS, N_BUFS};

/// Tiny deterministic generator: iterates the splitmix64 finalizer.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: splitmix64(seed),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Uniform draw in `0..n` (0 when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// A mutation operator: name plus transformation. The name is recorded on
/// corpus entries and findings so lineages read like a changelog.
pub type Op = (&'static str, fn(&mut ProgramSpec, &mut Rng));

/// The operator table. Order matters for determinism — appending is safe,
/// reordering changes every historical corpus evolution.
pub const OPS: &[Op] = &[
    ("add-wait", add_wait),
    ("drop-wait", drop_wait),
    ("move-wait", move_wait),
    ("add-event", add_event),
    ("drop-event", drop_event),
    ("move-record", move_record),
    ("reassign-placement", reassign_placement),
    ("resize-partitions", resize_partitions),
    ("retarget-buffer", retarget_buffer),
    ("add-tile", add_tile),
    ("split-tile", split_tile),
    ("drop-gene", drop_gene),
    ("swap-dir", swap_dir),
    ("toggle-host", toggle_host),
    ("swap-scheduler", swap_scheduler),
    ("splice-fault", splice_fault),
    ("add-barrier", add_barrier),
    ("drop-barrier", drop_barrier),
    ("add-lane", add_lane),
    ("drop-lane", drop_lane),
];

/// Apply one operator chosen by `seed` and repair the child. Returns the
/// mutated genome and the operator's name.
pub fn mutate(spec: &ProgramSpec, seed: u64) -> (ProgramSpec, &'static str) {
    let mut rng = Rng::new(seed);
    let mut out = spec.clone();
    let (name, op) = OPS[rng.below(OPS.len())];
    op(&mut out, &mut rng);
    out.repair();
    (out, name)
}

// ---------------------------------------------------------------------------
// Position helpers
// ---------------------------------------------------------------------------

fn positions(spec: &ProgramSpec, pred: fn(&Gene) -> bool) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (li, lane) in spec.lanes.iter().enumerate() {
        for (gi, g) in lane.iter().enumerate() {
            if pred(g) {
                out.push((li, gi));
            }
        }
    }
    out
}

fn record_lane(spec: &ProgramSpec, event: usize) -> Option<usize> {
    spec.lanes.iter().position(|l| {
        l.iter()
            .any(|g| matches!(g, Gene::Record(e) if *e == event))
    })
}

fn insert_at(lane: &mut Vec<Gene>, rng: &mut Rng, g: Gene) {
    let pos = rng.below(lane.len() + 1);
    lane.insert(pos, g);
}

// ---------------------------------------------------------------------------
// Synchronization edges
// ---------------------------------------------------------------------------

fn add_wait(spec: &mut ProgramSpec, rng: &mut Rng) {
    let events = spec.event_count();
    if events == 0 || spec.lanes.len() < 2 {
        return;
    }
    let e = rng.below(events);
    let Some(rl) = record_lane(spec, e) else {
        return;
    };
    let others: Vec<usize> = (0..spec.lanes.len()).filter(|&l| l != rl).collect();
    let li = others[rng.below(others.len())];
    insert_at(&mut spec.lanes[li], rng, Gene::Wait(e));
}

fn drop_wait(spec: &mut ProgramSpec, rng: &mut Rng) {
    let waits = positions(spec, |g| matches!(g, Gene::Wait(_)));
    if waits.is_empty() {
        return;
    }
    let (li, gi) = waits[rng.below(waits.len())];
    spec.lanes[li].remove(gi);
}

fn move_wait(spec: &mut ProgramSpec, rng: &mut Rng) {
    let waits = positions(spec, |g| matches!(g, Gene::Wait(_)));
    if waits.is_empty() {
        return;
    }
    let (li, gi) = waits[rng.below(waits.len())];
    let g = spec.lanes[li].remove(gi);
    let Gene::Wait(e) = g else { unreachable!() };
    let rl = record_lane(spec, e);
    let candidates: Vec<usize> = (0..spec.lanes.len()).filter(|&l| Some(l) != rl).collect();
    if candidates.is_empty() {
        return;
    }
    let li = candidates[rng.below(candidates.len())];
    insert_at(&mut spec.lanes[li], rng, Gene::Wait(e));
}

fn add_event(spec: &mut ProgramSpec, rng: &mut Rng) {
    if spec.lanes.len() < 2 {
        return;
    }
    let e = spec.event_count();
    let a = rng.below(spec.lanes.len());
    insert_at(&mut spec.lanes[a], rng, Gene::Record(e));
    let others: Vec<usize> = (0..spec.lanes.len()).filter(|&l| l != a).collect();
    let b = others[rng.below(others.len())];
    insert_at(&mut spec.lanes[b], rng, Gene::Wait(e));
}

fn drop_event(spec: &mut ProgramSpec, rng: &mut Rng) {
    let records = positions(spec, |g| matches!(g, Gene::Record(_)));
    if records.is_empty() {
        return;
    }
    let (li, gi) = records[rng.below(records.len())];
    // Repair cascades: orphaned waits drop, ids renumber densely.
    spec.lanes[li].remove(gi);
}

fn move_record(spec: &mut ProgramSpec, rng: &mut Rng) {
    let records = positions(spec, |g| matches!(g, Gene::Record(_)));
    if records.is_empty() {
        return;
    }
    let (li, gi) = records[rng.below(records.len())];
    let g = spec.lanes[li].remove(gi);
    insert_at(&mut spec.lanes[li], rng, g);
}

fn add_barrier(spec: &mut ProgramSpec, rng: &mut Rng) {
    for li in 0..spec.lanes.len() {
        insert_at(&mut spec.lanes[li], rng, Gene::Barrier);
    }
}

fn drop_barrier(spec: &mut ProgramSpec, rng: &mut Rng) {
    let n = spec.barrier_count();
    if n == 0 {
        return;
    }
    let pick = rng.below(n);
    for lane in &mut spec.lanes {
        let mut seen = 0usize;
        let mut at = None;
        for (gi, g) in lane.iter().enumerate() {
            if matches!(g, Gene::Barrier) {
                if seen == pick {
                    at = Some(gi);
                    break;
                }
                seen += 1;
            }
        }
        if let Some(gi) = at {
            lane.remove(gi);
        }
    }
}

// ---------------------------------------------------------------------------
// Placement and geometry
// ---------------------------------------------------------------------------

fn reassign_placement(spec: &mut ProgramSpec, rng: &mut Rng) {
    if spec.placements.is_empty() {
        return;
    }
    let li = rng.below(spec.placements.len());
    spec.placements[li] = rng.below(spec.partitions.max(1));
}

fn resize_partitions(spec: &mut ProgramSpec, rng: &mut Rng) {
    spec.partitions = 1 + rng.below(MAX_PARTITIONS);
}

fn add_lane(spec: &mut ProgramSpec, rng: &mut Rng) {
    spec.lanes.push(Vec::new());
    spec.placements.push(rng.below(spec.partitions.max(1)));
    // Give the new lane something to do: a private tile.
    let b = rng.below(N_BUFS);
    let w = (b + 1 + rng.below(N_BUFS - 1)) % N_BUFS;
    let lane = spec.lanes.last_mut().expect("just pushed");
    lane.push(Gene::H2D(b));
    lane.push(Gene::Kernel {
        reads: vec![b],
        writes: vec![w],
        work: 1 + rng.below(8) as u32,
        host: false,
    });
    lane.push(Gene::D2H(w));
}

fn drop_lane(spec: &mut ProgramSpec, rng: &mut Rng) {
    if spec.lanes.len() < 2 {
        return;
    }
    let li = rng.below(spec.lanes.len());
    spec.lanes.remove(li);
    spec.placements.remove(li);
}

// ---------------------------------------------------------------------------
// Tiles and buffers
// ---------------------------------------------------------------------------

fn retarget_buffer(spec: &mut ProgramSpec, rng: &mut Rng) {
    let mut refs = Vec::new();
    for (li, lane) in spec.lanes.iter().enumerate() {
        for (gi, g) in lane.iter().enumerate() {
            match g {
                Gene::H2D(_) | Gene::D2H(_) => refs.push((li, gi, 0usize)),
                Gene::Kernel { reads, writes, .. } => {
                    for slot in 0..reads.len() + writes.len() {
                        refs.push((li, gi, slot));
                    }
                }
                _ => {}
            }
        }
    }
    if refs.is_empty() {
        return;
    }
    let (li, gi, slot) = refs[rng.below(refs.len())];
    let nb = rng.below(N_BUFS);
    match &mut spec.lanes[li][gi] {
        Gene::H2D(b) | Gene::D2H(b) => *b = nb,
        Gene::Kernel { reads, writes, .. } => {
            if slot < reads.len() {
                reads[slot] = nb;
            } else {
                writes[slot - reads.len()] = nb;
            }
        }
        _ => unreachable!(),
    }
}

fn add_tile(spec: &mut ProgramSpec, rng: &mut Rng) {
    if spec.lanes.is_empty() {
        return;
    }
    let li = rng.below(spec.lanes.len());
    let a = rng.below(N_BUFS);
    let b = (a + 1 + rng.below(N_BUFS - 1)) % N_BUFS;
    let pos = rng.below(spec.lanes[li].len() + 1);
    let work = 1 + rng.below(8) as u32;
    spec.lanes[li].splice(
        pos..pos,
        [
            Gene::H2D(a),
            Gene::Kernel {
                reads: vec![a],
                writes: vec![b],
                work,
                host: false,
            },
            Gene::D2H(b),
        ],
    );
}

fn split_tile(spec: &mut ProgramSpec, rng: &mut Rng) {
    let kernels = positions(
        spec,
        |g| matches!(g, Gene::Kernel { work, .. } if *work >= 2),
    );
    if kernels.is_empty() {
        return;
    }
    let (li, gi) = kernels[rng.below(kernels.len())];
    let Gene::Kernel { work, .. } = &mut spec.lanes[li][gi] else {
        unreachable!()
    };
    let half = *work / 2;
    *work -= half;
    let mut twin = spec.lanes[li][gi].clone();
    if let Gene::Kernel { work, .. } = &mut twin {
        *work = half.max(1);
    }
    spec.lanes[li].insert(gi + 1, twin);
}

fn drop_gene(spec: &mut ProgramSpec, rng: &mut Rng) {
    // Records are dropped by `drop-event`, barriers by `drop-barrier`
    // (keeping counts uniform); everything else is fair game here.
    let others = positions(spec, |g| !matches!(g, Gene::Record(_) | Gene::Barrier));
    if others.is_empty() {
        return;
    }
    let (li, gi) = others[rng.below(others.len())];
    spec.lanes[li].remove(gi);
}

fn swap_dir(spec: &mut ProgramSpec, rng: &mut Rng) {
    let transfers = positions(spec, |g| matches!(g, Gene::H2D(_) | Gene::D2H(_)));
    if transfers.is_empty() {
        return;
    }
    let (li, gi) = transfers[rng.below(transfers.len())];
    spec.lanes[li][gi] = match spec.lanes[li][gi] {
        Gene::H2D(b) => Gene::D2H(b),
        Gene::D2H(b) => Gene::H2D(b),
        _ => unreachable!(),
    };
}

fn toggle_host(spec: &mut ProgramSpec, rng: &mut Rng) {
    let kernels = positions(spec, |g| matches!(g, Gene::Kernel { .. }));
    if kernels.is_empty() {
        return;
    }
    let (li, gi) = kernels[rng.below(kernels.len())];
    if let Gene::Kernel { host, .. } = &mut spec.lanes[li][gi] {
        *host = !*host;
    }
}

// ---------------------------------------------------------------------------
// Scheduler and faults
// ---------------------------------------------------------------------------

fn swap_scheduler(spec: &mut ProgramSpec, rng: &mut Rng) {
    let all = SchedulerKind::all();
    let others: Vec<SchedulerKind> = all
        .iter()
        .copied()
        .filter(|&k| k != spec.scheduler)
        .collect();
    spec.scheduler = others[rng.below(others.len())];
}

fn splice_fault(spec: &mut ProgramSpec, rng: &mut Rng) {
    if rng.below(4) == 0 {
        spec.fault = None;
        return;
    }
    let transfers = positions(spec, |g| matches!(g, Gene::H2D(_) | Gene::D2H(_)));
    let kernels = positions(spec, |g| matches!(g, Gene::Kernel { host: false, .. }));
    let mut sites = Vec::new();
    for &(lane, index) in &transfers {
        sites.push(FaultSite::Transfer { lane, index });
    }
    for &(lane, index) in &kernels {
        sites.push(FaultSite::KernelPanic { lane, index });
    }
    sites.push(FaultSite::Alloc {
        buf: rng.below(N_BUFS),
    });
    let site = sites[rng.below(sites.len())];
    spec.fault = Some(FaultSpec {
        seed: rng.next_u64(),
        attempts: 1 + rng.below(6) as u32,
        site,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_spec() -> ProgramSpec {
        let mut s = ProgramSpec {
            partitions: 2,
            placements: vec![0, 1],
            lanes: vec![
                vec![
                    Gene::H2D(0),
                    Gene::Kernel {
                        reads: vec![0],
                        writes: vec![1],
                        work: 4,
                        host: false,
                    },
                    Gene::Record(0),
                ],
                vec![Gene::Wait(0), Gene::D2H(1)],
            ],
            scheduler: SchedulerKind::Fifo,
            fault: None,
        };
        s.repair();
        s
    }

    #[test]
    fn mutation_is_deterministic() {
        let s = seed_spec();
        let (a, op_a) = mutate(&s, 42);
        let (b, op_b) = mutate(&s, 42);
        assert_eq!(op_a, op_b);
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn different_seeds_explore_different_ops() {
        let s = seed_spec();
        let ops: std::collections::BTreeSet<&str> = (0..200u64).map(|i| mutate(&s, i).1).collect();
        assert!(
            ops.len() > OPS.len() / 2,
            "200 seeds should hit most operators, got {ops:?}"
        );
    }

    #[test]
    fn every_child_is_structurally_valid() {
        let mut s = seed_spec();
        for i in 0..500u64 {
            let (child, op) = mutate(&s, splitmix64(i));
            child
                .to_program()
                .validate()
                .unwrap_or_else(|e| panic!("op {op} broke validity at step {i}: {e:?}"));
            s = child;
        }
        assert!(s.gene_count() <= crate::genome::MAX_LANES * crate::genome::MAX_GENES_PER_LANE);
    }

    #[test]
    fn every_op_applied_directly_keeps_validity() {
        for (name, op) in OPS {
            let mut s = seed_spec();
            for seed in 0..50u64 {
                let mut rng = Rng::new(seed);
                op(&mut s, &mut rng);
                s.repair();
                s.to_program()
                    .validate()
                    .unwrap_or_else(|e| panic!("op {name} seed {seed}: {e:?}"));
            }
        }
    }
}
