//! Full-oracle integration: the fuzzing loop with native execution on
//! retention must stay deterministic and disagreement-free, and must
//! exercise every oracle family.

use hstreams::sched::SchedulerKind;
use hstreams::testutil::{build_chained, build_synced};
use stream_fuzz::{Fuzzer, FuzzerConfig, ProgramSpec};

fn run_session(seed: u64, budget: usize) -> Fuzzer {
    let mut f = Fuzzer::new(FuzzerConfig {
        seed,
        full_oracles: true,
        shrink_findings: true,
        serve_oracle: true,
        opt_oracle: true,
    });
    f.add_seed("minimal", ProgramSpec::minimal());
    f.add_seed(
        "synced3",
        ProgramSpec::from_program(
            &build_synced(3, &[(0, 0), (1, 1), (2, 0)]),
            SchedulerKind::Fifo,
        ),
    );
    f.add_seed(
        "chained",
        ProgramSpec::from_program(
            &build_chained(&[2, 1], &[(0, 0)], 2, 12),
            SchedulerKind::WorkSteal,
        ),
    );
    f.run(budget);
    f
}

#[test]
fn full_oracle_fuzzing_is_deterministic_and_agreeable() {
    let a = run_session(2024, 50);
    let b = run_session(2024, 50);
    assert_eq!(
        a.evolution_hash(),
        b.evolution_hash(),
        "same seed + corpus + budget must evolve identically"
    );
    assert_eq!(a.log(), b.log());
    assert!(
        a.findings().is_empty(),
        "three-oracle disagreements: {:?}",
        a.findings()
            .iter()
            .map(|f| (&f.class, &f.detail))
            .collect::<Vec<_>>()
    );
    let families = a.families();
    assert!(
        families.len() >= 4,
        "full runs must light ≥4 signal families, got {families:?}"
    );
    // The differential family only exists when native + reference agree.
    assert!(
        a.seen_signals().contains("diff:native-ref-agree"),
        "native/reference agreement never observed: {:?}",
        a.seen_signals()
    );
}

#[test]
fn different_seeds_explore_differently() {
    let a = run_session(1, 30);
    let b = run_session(2, 30);
    assert_ne!(
        a.evolution_hash(),
        b.evolution_hash(),
        "distinct master seeds should diverge"
    );
}
