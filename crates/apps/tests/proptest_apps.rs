//! Property-based validation of the applications: for arbitrary problem
//! shapes and tilings, the streamed native execution must match the serial
//! reference.

use hstreams::Context;
use mic_apps::{cholesky, hotspot, kmeans, mm, nn, srad, util};
use micsim::PlatformConfig;
use proptest::prelude::*;

fn ctx(partitions: usize) -> Context {
    Context::builder(PlatformConfig::phi_31sp())
        .partitions(partitions)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mm_matches_reference_for_any_tiling(
        tpd in 1usize..5,
        tile in 4usize..12,
        p in 1usize..5,
        seed in 0u64..1000,
    ) {
        let n = tpd * tile;
        let cfg = mm::MmConfig { n, tiles_per_dim: tpd };
        let mut c = ctx(p);
        let bufs = mm::build(&mut c, &cfg).unwrap();
        let (a, b) = mm::fill_inputs(&c, &cfg, &bufs, seed).unwrap();
        c.run_native().unwrap();
        let got = mm::collect_result(&c, &cfg, &bufs).unwrap();
        let want = mm::reference(&a, &b);
        prop_assert!(util::max_rel_diff(&got.data, &want.data, 1.0) < 5e-3);
    }

    #[test]
    fn cholesky_matches_reference_for_any_tiling(
        tpd in 1usize..5,
        tile in 4usize..10,
        p in 1usize..5,
        seed in 0u64..1000,
    ) {
        let n = tpd * tile;
        let cfg = cholesky::CfConfig { n, tiles_per_dim: tpd };
        let mut c = ctx(p);
        let bufs = cholesky::build(&mut c, &cfg).unwrap();
        let a = cholesky::fill_inputs(&c, &cfg, &bufs, seed).unwrap();
        c.run_native().unwrap();
        let got = cholesky::collect_result(&c, &cfg, &bufs).unwrap();
        let want = cholesky::reference(&a, n);
        prop_assert!(util::max_rel_diff(&got, &want, 1.0) < 5e-3);
    }

    #[test]
    fn hotspot_matches_reference_for_any_shape(
        rows in 4usize..24,
        cols in 4usize..20,
        tiles in 1usize..5,
        iters in 1usize..5,
        seed in 0u64..1000,
    ) {
        let tiles = tiles.min(rows);
        let cfg = hotspot::HotspotConfig { rows, cols, iterations: iters, tiles };
        let mut c = ctx(2);
        let bufs = hotspot::build(&mut c, &cfg).unwrap();
        let (t0, p0) = hotspot::fill_inputs(&c, &cfg, &bufs, seed).unwrap();
        c.run_native().unwrap();
        let got = hotspot::collect_result(&c, &cfg, &bufs).unwrap();
        let want = hotspot::reference(&cfg, &t0, &p0);
        prop_assert!(util::max_rel_diff(&got, &want, 1.0) < 1e-3);
    }

    #[test]
    fn srad_matches_reference_for_any_shape(
        rows in 4usize..20,
        cols in 4usize..16,
        tiles in 1usize..4,
        iters in 1usize..4,
        seed in 0u64..1000,
    ) {
        let tiles = tiles.min(rows);
        let cfg = srad::SradConfig {
            rows,
            cols,
            lambda: 0.5,
            iterations: iters,
            tiles,
        };
        let mut c = ctx(2);
        let bufs = srad::build(&mut c, &cfg).unwrap();
        let img = srad::fill_inputs(&c, &cfg, &bufs, seed).unwrap();
        c.run_native().unwrap();
        let got = srad::collect_result(&c, &cfg, &bufs).unwrap();
        let want = srad::reference(&cfg, &img);
        prop_assert!(util::max_rel_diff(&got, &want, 1.0) < 1e-2);
    }

    #[test]
    fn nn_matches_reference_for_any_tiling(
        records in 32usize..2048,
        tiles in 1usize..9,
        k in 1usize..12,
        seed in 0u64..1000,
    ) {
        let tiles = tiles.min(records);
        let k = k.min(records);
        let cfg = nn::NnConfig { records, tiles, k, target: (40.0, 120.0) };
        let mut c = ctx(2);
        let bufs = nn::build(&mut c, &cfg).unwrap();
        let data = nn::fill_inputs(&c, &cfg, &bufs, seed).unwrap();
        c.run_native().unwrap();
        let got = nn::select_neighbors(&c, &cfg, &bufs).unwrap();
        let want = nn::reference(&cfg, &data);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.1 - w.1).abs() < 1e-3);
        }
    }

    #[test]
    fn kmeans_matches_reference_for_any_tiling(
        points in 64usize..512,
        tiles in 1usize..6,
        k in 2usize..6,
        iters in 1usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = kmeans::KmeansConfig {
            points,
            dims: 5,
            k,
            iterations: iters,
            tiles: tiles.min(points),
            alloc_micros: 5,
        };
        let mut c = ctx(2);
        let bufs = kmeans::build(&mut c, &cfg).unwrap();
        let data = kmeans::fill_inputs(&c, &cfg, &bufs, seed).unwrap();
        c.run_native().unwrap();
        let got = c.read_host(bufs.centroids).unwrap();
        let want = kmeans::reference(&cfg, &data);
        prop_assert!(util::max_rel_diff(&got, &want, 1.0) < 1e-2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulated makespans are monotone in problem size for a fixed config
    /// (a coarse sanity property of the cost models).
    #[test]
    fn sim_time_monotone_in_problem_size(base in 2usize..6, p in 1usize..5) {
        let small = mm::simulate(
            &mm::MmConfig { n: base * 100, tiles_per_dim: base },
            PlatformConfig::phi_31sp(),
            p,
        )
        .unwrap()
        .0;
        let large = mm::simulate(
            &mm::MmConfig { n: base * 200, tiles_per_dim: base },
            PlatformConfig::phi_31sp(),
            p,
        )
        .unwrap()
        .0;
        prop_assert!(large > small);
    }
}
