//! Matrix Multiplication (MM) — overlappable, from the hStreams SDK.
//!
//! `C = A × B` with `C` partitioned into `tpd × tpd` square tiles
//! (the paper's `T = tile² ` tasks). Each task multiplies one row-panel of
//! `A` by one column-panel of `B`. Panels are transferred to the device
//! **once** and tasks in other streams synchronize on their arrival with
//! events; each finished `C` tile streams back immediately, overlapping the
//! remaining compute — the Fig. 4(a) flow.
//!
//! Transfer volume is `3·n²` elements against `2·n³` flops of compute, so
//! the overlap can hide at most a ~`6/n·(bytes/flop)` slice — which is why
//! the paper measures a modest 8.3 % average gain for MM.

use hstreams::context::Context;
use hstreams::kernel::KernelDesc;
use hstreams::types::{BufId, Result, StreamId};
use micsim::PlatformConfig;

use crate::profiles;
use crate::util;

/// Problem description.
#[derive(Clone, Copy, Debug)]
pub struct MmConfig {
    /// Matrix dimension `n` (matrices are `n × n`).
    pub n: usize,
    /// Tiles per dimension; `tiles_per_dim²` tasks in total. Must divide `n`.
    pub tiles_per_dim: usize,
}

impl MmConfig {
    /// Validate divisibility.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.n == 0 || self.tiles_per_dim == 0 {
            return Err("n and tiles_per_dim must be positive".into());
        }
        if !self.n.is_multiple_of(self.tiles_per_dim) {
            return Err(format!(
                "tiles_per_dim {} must divide n {}",
                self.tiles_per_dim, self.n
            ));
        }
        Ok(())
    }

    /// Tile edge length.
    pub fn tile(&self) -> usize {
        self.n / self.tiles_per_dim
    }

    /// Total floating-point operations of the full multiplication.
    pub fn flops(&self) -> f64 {
        2.0 * (self.n as f64).powi(3)
    }
}

/// Buffer handles of a built MM program.
pub struct MmBuffers {
    /// Row-panels of `A` (`tile × n` each), one per tile row.
    pub a_panels: Vec<BufId>,
    /// Column-panels of `B` (`n × tile` each, row-major), one per tile col.
    pub b_panels: Vec<BufId>,
    /// `C` tiles (`tile × tile`), row-major tile index `i * tpd + j`.
    pub c_tiles: Vec<BufId>,
}

/// GEMM tile kernel: `C_tile = A_panel × B_panel`.
fn gemm_kernel(label: String, tile: usize, n: usize) -> KernelDesc {
    let work = 2.0 * tile as f64 * tile as f64 * n as f64;
    KernelDesc::simulated(label, profiles::mm_gemm(), work).with_native(move |k| {
        let a = k.reads[0]; // tile x n, row-major
        let b = k.reads[1]; // n x tile, row-major
        let c = &mut k.writes[0]; // tile x tile, row-major
        let threads = k.threads;
        hstreams::parallel::par_chunks_mut(c, threads, |_, offset, chunk| {
            // chunk covers a contiguous row-major span of C.
            for (idx, out) in chunk.iter_mut().enumerate() {
                let flat = offset + idx;
                let (r, cc) = (flat / tile, flat % tile);
                let mut acc = 0.0f32;
                let arow = &a[r * n..(r + 1) * n];
                for kk in 0..n {
                    acc += arow[kk] * b[kk * tile + cc];
                }
                *out = acc;
            }
        });
    })
}

/// Build the streamed MM program on `ctx` (which fixes `P` and the stream
/// count). Returns the buffer handles; inputs are written with
/// [`fill_inputs`]. With `tiles_per_dim == 1` this degenerates to the
/// paper's non-streamed "w/o" version: one task, one transfer each way.
pub fn build(ctx: &mut Context, cfg: &MmConfig) -> Result<MmBuffers> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let tpd = cfg.tiles_per_dim;
    let tile = cfg.tile();
    let n = cfg.n;

    let a_panels: Vec<BufId> = (0..tpd)
        .map(|i| ctx.alloc(format!("A_panel{i}"), tile * n))
        .collect();
    let b_panels: Vec<BufId> = (0..tpd)
        .map(|j| ctx.alloc(format!("B_panel{j}"), n * tile))
        .collect();
    let c_tiles: Vec<BufId> = (0..tpd * tpd)
        .map(|t| ctx.alloc(format!("C{}_{}", t / tpd, t % tpd), tile * tile))
        .collect();
    let bufs = MmBuffers {
        a_panels,
        b_panels,
        c_tiles,
    };
    record(ctx, cfg, &bufs)?;
    Ok(bufs)
}

/// Record the streamed MM action sequence against already-allocated
/// buffers. Called by [`build`]; also directly by autotuning sweeps, which
/// allocate and fill the buffers once and then re-record the same problem
/// against a replanned stream geometry (see
/// [`Context::replan`](hstreams::context::Context::replan)).
pub fn record(ctx: &mut Context, cfg: &MmConfig, bufs: &MmBuffers) -> Result<()> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let tpd = cfg.tiles_per_dim;
    let tile = cfg.tile();
    let n = cfg.n;
    let streams = ctx.stream_count();
    let (a_panels, b_panels, c_tiles) = (&bufs.a_panels, &bufs.b_panels, &bufs.c_tiles);

    // Panels transfer once, demand-driven: each panel's H2D is enqueued on
    // the stream of the *first* task that consumes it, immediately before
    // that task, so no kernel queues behind uploads it does not need (stream
    // FIFOs would otherwise stall the pipeline behind unrelated transfers).
    // Later consumers synchronize on the panel's event; on a multi-card
    // context the residency tracker mirrors panels to the other cards
    // on demand (Sec. VI's extra transfers), so the same code runs
    // unmodified on several MICs.
    let mut tracker = hstreams::ResidencyTracker::new();
    let mut a_up = vec![false; tpd];
    let mut b_up = vec![false; tpd];
    for i in 0..tpd {
        for j in 0..tpd {
            let t = i * tpd + j;
            let s: StreamId = ctx.stream(t % streams)?;
            if !a_up[i] {
                ctx.h2d(s, a_panels[i])?;
                tracker.produced(ctx, a_panels[i], s)?;
                a_up[i] = true;
            } else {
                tracker.ensure_readable(ctx, a_panels[i], s)?;
            }
            if !b_up[j] {
                ctx.h2d(s, b_panels[j])?;
                tracker.produced(ctx, b_panels[j], s)?;
                b_up[j] = true;
            } else {
                tracker.ensure_readable(ctx, b_panels[j], s)?;
            }
            ctx.kernel(
                s,
                gemm_kernel(format!("gemm({i},{j})"), tile, n)
                    .reading([a_panels[i], b_panels[j]])
                    .writing([c_tiles[t]]),
            )?;
            ctx.d2h(s, c_tiles[t])?;
        }
    }
    Ok(())
}

/// Write deterministic random `A` and `B` into the panel buffers.
pub fn fill_inputs(
    ctx: &Context,
    cfg: &MmConfig,
    bufs: &MmBuffers,
    seed: u64,
) -> Result<(Mat, Mat)> {
    let n = cfg.n;
    let a = util::random_vec(seed, n * n, -1.0, 1.0);
    let b = util::random_vec(seed ^ 0x5eed, n * n, -1.0, 1.0);
    let tile = cfg.tile();
    for (i, &panel) in bufs.a_panels.iter().enumerate() {
        // Rows i*tile .. (i+1)*tile of A, contiguous in row-major.
        ctx.write_host(panel, &a[i * tile * n..(i + 1) * tile * n])?;
    }
    for (j, &panel) in bufs.b_panels.iter().enumerate() {
        // Columns j*tile .. of B, stored row-major n x tile.
        let mut p = vec![0.0f32; n * tile];
        for r in 0..n {
            p[r * tile..(r + 1) * tile]
                .copy_from_slice(&b[r * n + j * tile..r * n + (j + 1) * tile]);
        }
        ctx.write_host(panel, &p)?;
    }
    Ok((Mat { n, data: a }, Mat { n, data: b }))
}

/// A dense square matrix (row-major) used by references and validators.
pub struct Mat {
    /// Edge length.
    pub n: usize,
    /// Row-major elements.
    pub data: Vec<f32>,
}

/// Serial reference multiplication.
pub fn reference(a: &Mat, b: &Mat) -> Mat {
    let n = a.n;
    assert_eq!(n, b.n);
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let av = a.data[i * n + k];
            if av == 0.0 {
                continue;
            }
            let brow = &b.data[k * n..(k + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
    }
    Mat { n, data: c }
}

/// Assemble the tiled `C` result from the context's host buffers.
pub fn collect_result(ctx: &Context, cfg: &MmConfig, bufs: &MmBuffers) -> Result<Mat> {
    let n = cfg.n;
    let tpd = cfg.tiles_per_dim;
    let tile = cfg.tile();
    let mut c = vec![0.0f32; n * n];
    for i in 0..tpd {
        for j in 0..tpd {
            let t = ctx.read_host(bufs.c_tiles[i * tpd + j])?;
            for r in 0..tile {
                let dst = (i * tile + r) * n + j * tile;
                c[dst..dst + tile].copy_from_slice(&t[r * tile..(r + 1) * tile]);
            }
        }
    }
    Ok(Mat { n, data: c })
}

/// Convenience: build + run on the simulator, returning (makespan seconds,
/// GFLOPS) for the paper's plots.
pub fn simulate(cfg: &MmConfig, platform: PlatformConfig, partitions: usize) -> Result<(f64, f64)> {
    let mut ctx = Context::builder(platform).partitions(partitions).build()?;
    build(&mut ctx, cfg)?;
    let report = ctx.run_sim()?;
    let secs = report.makespan().as_secs_f64();
    Ok((secs, cfg.flops() / secs / 1e9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::assert_close;

    #[test]
    fn config_validation() {
        assert!(MmConfig {
            n: 100,
            tiles_per_dim: 3
        }
        .validate()
        .is_err());
        assert!(MmConfig {
            n: 0,
            tiles_per_dim: 1
        }
        .validate()
        .is_err());
        let ok = MmConfig {
            n: 100,
            tiles_per_dim: 4,
        };
        ok.validate().unwrap();
        assert_eq!(ok.tile(), 25);
        assert_eq!(ok.flops(), 2e6);
    }

    #[test]
    fn native_tiled_matches_reference() {
        let cfg = MmConfig {
            n: 64,
            tiles_per_dim: 4,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let (a, b) = fill_inputs(&ctx, &cfg, &bufs, 42).unwrap();
        ctx.run_native().unwrap();
        let c = collect_result(&ctx, &cfg, &bufs).unwrap();
        let want = reference(&a, &b);
        assert_close(&c.data, &want.data, 2e-3, "tiled MM vs serial");
    }

    #[test]
    fn single_tile_is_the_non_streamed_version() {
        let cfg = MmConfig {
            n: 32,
            tiles_per_dim: 1,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(1)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        // 1 A panel + 1 B panel + 1 C tile; 2 h2d + 1 kernel + 1 d2h
        // + 2 events.
        assert_eq!(bufs.c_tiles.len(), 1);
        let (a, b) = fill_inputs(&ctx, &cfg, &bufs, 7).unwrap();
        ctx.run_native().unwrap();
        let c = collect_result(&ctx, &cfg, &bufs).unwrap();
        assert_close(&c.data, &reference(&a, &b).data, 2e-3, "single-tile MM");
    }

    #[test]
    fn streamed_sim_beats_single_stream() {
        // The Fig. 8(a) direction: streamed (P=4, T=144) vs w/o (P=1, T=1).
        let n = 6000;
        let (wo_secs, wo_gf) = simulate(
            &MmConfig {
                n,
                tiles_per_dim: 1,
            },
            PlatformConfig::phi_31sp(),
            1,
        )
        .unwrap();
        let (w_secs, w_gf) = simulate(
            &MmConfig {
                n,
                tiles_per_dim: 12,
            },
            PlatformConfig::phi_31sp(),
            4,
        )
        .unwrap();
        assert!(
            w_secs < wo_secs,
            "streamed {w_secs}s must beat non-streamed {wo_secs}s"
        );
        let gain = w_gf / wo_gf - 1.0;
        assert!(
            (0.025..0.25).contains(&gain),
            "MM gain should be modest (paper: 8.3%), got {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn multi_device_mm_scales_sublinearly() {
        // The same streamed code on two cards: faster, but panel mirroring
        // keeps it below the 2x projection (Sec. VI generalized to MM).
        let cfg = MmConfig {
            n: 8000,
            tiles_per_dim: 16,
        };
        let (one, _) = simulate(&cfg, PlatformConfig::phi_31sp(), 4).unwrap();
        let (two, _) = simulate(&cfg, PlatformConfig::phi_31sp_multi(2), 4).unwrap();
        let speedup = one / two;
        assert!(
            (1.2..2.0).contains(&speedup),
            "2-card MM speedup {speedup} should be real but sub-linear"
        );
    }

    #[test]
    fn multi_device_mm_native_is_correct() {
        let cfg = MmConfig {
            n: 48,
            tiles_per_dim: 4,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp_multi(2))
            .partitions(2)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let (a, b) = fill_inputs(&ctx, &cfg, &bufs, 9).unwrap();
        ctx.run_native().unwrap();
        let c = collect_result(&ctx, &cfg, &bufs).unwrap();
        assert_close(&c.data, &reference(&a, &b).data, 2e-3, "2-card MM");
    }

    #[test]
    fn sim_gflops_in_paper_band() {
        let (_, gf) = simulate(
            &MmConfig {
                n: 6000,
                tiles_per_dim: 12,
            },
            PlatformConfig::phi_31sp(),
            4,
        )
        .unwrap();
        assert!(
            (250.0..700.0).contains(&gf),
            "MM ≈ paper's hundreds of GFLOPS, got {gf}"
        );
    }
}
