//! Small shared helpers: deterministic input generation and float
//! comparisons for validation against serial references.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for workload generation; same seed ⇒ same workload on
/// every run, which the paper's repeat-and-average protocol assumes.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform random vector in `[lo, hi)`.
pub fn random_vec(seed: u64, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut r = rng(seed);
    (0..len).map(|_| r.gen_range(lo..hi)).collect()
}

/// Maximum absolute difference between two slices.
///
/// # Panics
/// Panics if lengths differ — comparing different shapes is always a bug.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Maximum relative difference `|a-b| / max(|a|,|b|,scale)`.
pub fn max_rel_diff(a: &[f32], b: &[f32], scale: f32) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(scale))
        .fold(0.0, f32::max)
}

/// Assert two slices agree within `tol` relative error.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    let d = max_rel_diff(a, b, 1.0);
    assert!(d <= tol, "{what}: max relative diff {d} > tol {tol}");
}

/// Split `n` items into `parts` near-equal contiguous ranges.
#[allow(clippy::single_range_in_vec_init)] // a 1-range Vec IS the intent here
pub fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    if parts == 0 {
        return vec![0..n];
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        out.push(start..start + take);
        start += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        assert_eq!(random_vec(7, 16, 0.0, 1.0), random_vec(7, 16, 0.0, 1.0));
        assert_ne!(random_vec(7, 16, 0.0, 1.0), random_vec(8, 16, 0.0, 1.0));
    }

    #[test]
    fn diffs() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert!(max_rel_diff(&[100.0], &[101.0], 1.0) < 0.011);
        assert_close(&[1.0, 2.0], &[1.0, 2.0], 1e-6, "identical");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn diff_rejects_shape_mismatch() {
        max_abs_diff(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "max relative diff")]
    fn assert_close_fires() {
        assert_close(&[1.0], &[2.0], 0.1, "should fail");
    }

    #[test]
    fn split_ranges_cover() {
        let ranges = split_ranges(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        assert_eq!(split_ranges(2, 5).len(), 2, "parts clamp to n");
        assert!(split_ranges(0, 3).is_empty());
        assert_eq!(split_ranges(5, 1), vec![0..5]);
    }
}
