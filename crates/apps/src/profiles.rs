//! Calibrated kernel cost profiles for the seven workloads.
//!
//! The `thread_rate` constants are in work units per second per
//! thread-equivalent (a full 56-core 31SP supplies ≈100.8 equivalents, see
//! [`micsim::compute::SmtScaling`]). They are anchored to the paper's own
//! numbers:
//!
//! * hBench: the Fig. 6 crossover — the 4 Mi-element kernel at 40 iterations
//!   costs the same ~5.2 ms as the 32 MiB two-way transfer ⇒ ≈32 G
//!   element-iterations/s device-wide ⇒ 0.32 G per equivalent.
//! * MM: Fig. 9(a) peaks near 550 GFLOPS ⇒ ≈5.5 GFLOPS per equivalent.
//! * CF: Fig. 9(b) peaks near 375 GFLOPS ⇒ ≈3.8 GFLOPS per equivalent
//!   (the panel kernels are less regular than GEMM).
//! * Kmeans: dominated by its per-iteration scratch allocation, which the
//!   paper observes scales with threads-per-stream (Sec. V-B1) — modeled by
//!   `alloc_per_thread`.
//! * Hotspot: a stencil whose tile working set rewards compact partitions
//!   (the P≈33–37 dip of Fig. 9(d)) — modeled by `CacheProfile`.
//!
//! `half_work_per_thread` sets where small tiles stop scaling (the left edge
//! of Fig. 7's U and the right-hand decay of Fig. 10).

use micsim::compute::{CacheProfile, KernelProfile};
use micsim::time::SimDuration;

/// hBench `B[i] = A[i] + α` kernel; work = element-iterations.
pub fn hbench() -> KernelProfile {
    KernelProfile {
        name: "hbench".into(),
        thread_rate: 0.32e9,
        half_work_per_thread: 8.0e3,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

/// Matrix-multiplication tile kernel; work = flops.
pub fn mm_gemm() -> KernelProfile {
    KernelProfile {
        name: "gemm".into(),
        thread_rate: 5.5e9,
        half_work_per_thread: 50.0e3,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

/// Cholesky panel factorization (POTRF); work = flops.
pub fn cf_potrf() -> KernelProfile {
    KernelProfile {
        name: "potrf".into(),
        thread_rate: 1.2e9, // mostly sequential dependency chain in the tile
        half_work_per_thread: 1.0e6,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

/// Cholesky triangular solve (TRSM); work = flops.
pub fn cf_trsm() -> KernelProfile {
    KernelProfile {
        name: "trsm".into(),
        thread_rate: 3.2e9,
        half_work_per_thread: 2.0e6,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

/// Cholesky trailing update (SYRK/GEMM); work = flops.
pub fn cf_update() -> KernelProfile {
    KernelProfile {
        name: "syrk".into(),
        thread_rate: 4.2e9,
        half_work_per_thread: 2.0e6,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

/// Kmeans assignment kernel; work = point-centroid-dimension products.
///
/// `alloc_per_thread` is the paper's observed per-iteration temporary
/// allocation cost, linear in resident threads (Sec. V-B1, Fig. 9(c)).
pub fn kmeans_assign() -> KernelProfile {
    kmeans_assign_with_alloc(SimDuration::from_micros(5))
}

/// Kmeans assignment with an explicit per-thread allocation cost — used by
/// the allocation ablation bench (zero = "the kernel preallocates").
pub fn kmeans_assign_with_alloc(alloc_per_thread: SimDuration) -> KernelProfile {
    KernelProfile {
        name: "kmeans_assign".into(),
        thread_rate: 0.5e9,
        half_work_per_thread: 20.0e3,
        alloc_per_thread,
        cache: CacheProfile::Neutral,
    }
}

/// Kmeans centroid-reduction kernel; work = partial-sum elements.
pub fn kmeans_reduce() -> KernelProfile {
    KernelProfile {
        name: "kmeans_reduce".into(),
        thread_rate: 0.5e9,
        half_work_per_thread: 2.0e3,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

/// Hotspot transient-thermal stencil; work = cell-updates × flops.
pub fn hotspot_stencil() -> KernelProfile {
    KernelProfile {
        name: "hotspot".into(),
        thread_rate: 0.15e9,
        half_work_per_thread: 6.0e3,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::CompactFriendly {
            bonus: 0.15,
            ideal_cores: 2,
            worst_cores: 14,
        },
    }
}

/// NN distance kernel; work = records (the k-selection is host-side).
///
/// The kernel is memory-bound on the card (gather + sqrt per record); the
/// rate is set so the full-device distance pass over Fig. 9(e)'s 5.24 M
/// records costs a couple of milliseconds — small against the
/// latency-dominated transfer stream, as the paper observes ("NN's
/// performance is bounded by data transfers").
pub fn nn_distance() -> KernelProfile {
    KernelProfile {
        name: "nn_dist".into(),
        thread_rate: 12.0e6,
        half_work_per_thread: 500.0,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

/// SRAD statistics reduction; work = pixels.
pub fn srad_reduce() -> KernelProfile {
    KernelProfile {
        name: "srad_reduce".into(),
        thread_rate: 20.0e6,
        half_work_per_thread: 2.0e3,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

/// SRAD diffusion-coefficient kernel; work = pixels.
pub fn srad_coeff() -> KernelProfile {
    KernelProfile {
        name: "srad_coeff".into(),
        thread_rate: 8.0e6,
        half_work_per_thread: 2.0e3,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

/// SRAD update kernel; work = pixels.
pub fn srad_update() -> KernelProfile {
    KernelProfile {
        name: "srad_update".into(),
        thread_rate: 10.0e6,
        half_work_per_thread: 2.0e3,
        alloc_per_thread: SimDuration::ZERO,
        cache: CacheProfile::Neutral,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micsim::compute::{ComputeModel, KernelInvocation, SmtScaling};
    use micsim::device::DeviceSpec;
    use micsim::partition::PartitionPlan;

    fn model() -> ComputeModel {
        ComputeModel {
            launch_overhead: SimDuration::from_micros(60),
            smt: SmtScaling::default(),
            core_sharing_factor: 0.8,
            threads_per_core: 4,
        }
    }

    #[test]
    fn hbench_fig6_crossover_holds() {
        // 4 Mi elements x 40 iterations on the full device ≈ 5.2 ms.
        let m = model();
        let plan = PartitionPlan::equal_split(&DeviceSpec::phi_31sp(), 1).unwrap();
        let prof = hbench();
        let inv = KernelInvocation {
            profile: &prof,
            work: 4.0 * 1024.0 * 1024.0 * 40.0,
        };
        let ms = m
            .kernel_time(&inv, &plan.partitions[0])
            .unwrap()
            .as_millis_f64();
        assert!((ms - 5.2).abs() < 0.8, "hbench 40-iter kernel = {ms} ms");
    }

    #[test]
    fn mm_reaches_paper_scale_gflops() {
        // Full-device GEMM throughput should land in the paper's few-hundred
        // GFLOPS band.
        let m = model();
        let plan = PartitionPlan::equal_split(&DeviceSpec::phi_31sp(), 1).unwrap();
        let prof = mm_gemm();
        let flops = 2.0 * 6000.0f64.powi(3);
        let inv = KernelInvocation {
            profile: &prof,
            work: flops,
        };
        let secs = m
            .kernel_time(&inv, &plan.partitions[0])
            .unwrap()
            .as_secs_f64();
        let gflops = flops / secs / 1e9;
        assert!(
            (300.0..700.0).contains(&gflops),
            "full-device MM = {gflops} GFLOPS"
        );
    }

    #[test]
    fn kmeans_alloc_dominates_on_wide_partitions() {
        let m = model();
        let plan1 = PartitionPlan::equal_split(&DeviceSpec::phi_31sp(), 1).unwrap();
        let plan56 = PartitionPlan::equal_split(&DeviceSpec::phi_31sp(), 56).unwrap();
        let prof = kmeans_assign();
        let inv = KernelInvocation {
            profile: &prof,
            work: 20_000.0,
        };
        let wide = m.kernel_time(&inv, &plan1.partitions[0]).unwrap();
        let narrow = m.kernel_time(&inv, &plan56.partitions[0]).unwrap();
        // 224 threads x 100 us alloc >> 4 threads x 100 us + slower compute.
        assert!(
            wide > narrow * 3,
            "wide {wide} should dwarf narrow {narrow}"
        );
    }

    #[test]
    fn hotspot_prefers_compact_partitions() {
        let m = model();
        // P=37: ~6 threads over <=3 cores -> near-full bonus.
        let plan37 = PartitionPlan::equal_split(&DeviceSpec::phi_31sp(), 37).unwrap();
        let prof = hotspot_stencil();
        let f_compact = m.cache_factor(&prof, &plan37.partitions[36]);
        let plan2 = PartitionPlan::equal_split(&DeviceSpec::phi_31sp(), 2).unwrap();
        let f_wide = m.cache_factor(&prof, &plan2.partitions[0]);
        assert!(f_compact > 1.05);
        assert_eq!(f_wide, 1.0);
    }
}
