//! Kmeans clustering — non-overlappable, from Rodinia/MineBench.
//!
//! Lloyd's algorithm: every iteration assigns each point to its nearest
//! centroid and recomputes the centroids, with a device-wide barrier between
//! the two phases (Fig. 4(d)) — so transfers and kernels cannot overlap.
//!
//! The paper still measures a 24.1 % streamed gain for Kmeans, and traces it
//! to the kernel's **per-iteration temporary allocation**, whose cost grows
//! linearly with the threads of the partition the kernel lands on
//! (Sec. V-B1). With many partitions each allocation covers few threads and
//! the per-iteration overhead collapses — the effect behind Fig. 9(c)'s
//! monotone drop. The cost model carries this in
//! [`profiles::kmeans_assign`]'s `alloc_per_thread`.

use hstreams::context::Context;
use hstreams::kernel::KernelDesc;
use hstreams::types::{BufId, Result};
use micsim::PlatformConfig;

use crate::profiles;
use crate::util;

/// Problem description.
#[derive(Clone, Copy, Debug)]
pub struct KmeansConfig {
    /// Number of points.
    pub points: usize,
    /// Feature dimensions (MineBench uses 34).
    pub dims: usize,
    /// Number of clusters (the paper uses 8).
    pub k: usize,
    /// Lloyd iterations (the paper uses 100).
    pub iterations: usize,
    /// Number of point tiles (tasks per iteration).
    pub tiles: usize,
    /// Per-thread scratch allocation cost per kernel invocation, in
    /// microseconds (Sec. V-B1's observed overhead). `5` matches the
    /// calibrated platform; `0` models a preallocating kernel (ablation).
    pub alloc_micros: u64,
}

impl KmeansConfig {
    /// The paper's Fig. 9(c) setup: 1 120 000 points, tile size 20 000.
    pub fn paper_fig9() -> KmeansConfig {
        KmeansConfig {
            points: 1_120_000,
            dims: 34,
            k: 8,
            iterations: 100,
            tiles: 56,
            alloc_micros: 5,
        }
    }

    /// Validate.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.points == 0 || self.dims == 0 || self.k == 0 || self.tiles == 0 {
            return Err("points, dims, k and tiles must be positive".into());
        }
        if self.k > self.points {
            return Err(format!("k {} exceeds point count {}", self.k, self.points));
        }
        if self.tiles > self.points {
            return Err(format!(
                "tiles {} exceeds point count {}",
                self.tiles, self.points
            ));
        }
        Ok(())
    }
}

/// Buffer handles of a built Kmeans program.
pub struct KmeansBuffers {
    /// Point tiles (`chunk × dims`, row-major point-major).
    pub point_tiles: Vec<BufId>,
    /// Current centroids (`k × dims`).
    pub centroids: BufId,
    /// Per-tile partial sums (`k × (dims + 1)`: per-cluster feature sums
    /// followed by the member count).
    pub partials: Vec<BufId>,
    /// Point counts of each tile.
    pub tile_sizes: Vec<usize>,
}

fn assign_kernel(label: String, cfg: &KmeansConfig, chunk: usize) -> KernelDesc {
    let (dims, k) = (cfg.dims, cfg.k);
    let work = chunk as f64 * k as f64 * dims as f64;
    let profile =
        profiles::kmeans_assign_with_alloc(micsim::SimDuration::from_micros(cfg.alloc_micros));
    KernelDesc::simulated(label, profile, work).with_native(move |kc| {
        let points = kc.reads[0];
        let centroids = kc.reads[1];
        let threads = kc.threads;
        let n = points.len() / dims;
        let stride = dims + 1;
        let partial = hstreams::parallel::par_reduce(
            n,
            threads,
            |range| {
                let mut acc = vec![0.0f32; k * stride];
                for p in range {
                    let pt = &points[p * dims..(p + 1) * dims];
                    let mut best = 0usize;
                    let mut best_d = f32::INFINITY;
                    for c in 0..k {
                        let cen = &centroids[c * dims..(c + 1) * dims];
                        let mut d = 0.0f32;
                        for m in 0..dims {
                            let diff = pt[m] - cen[m];
                            d += diff * diff;
                        }
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    for m in 0..dims {
                        acc[best * stride + m] += pt[m];
                    }
                    acc[best * stride + dims] += 1.0;
                }
                acc
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
            vec![0.0f32; k * stride],
        );
        kc.writes[0].copy_from_slice(&partial);
    })
}

fn reduce_kernel(label: String, cfg: &KmeansConfig, tiles: usize) -> KernelDesc {
    let (dims, k) = (cfg.dims, cfg.k);
    let work = tiles as f64 * k as f64 * (dims + 1) as f64;
    KernelDesc::simulated(label, profiles::kmeans_reduce(), work).with_native(move |kc| {
        let stride = dims + 1;
        let mut sums = vec![0.0f32; k * stride];
        for partial in kc.reads.iter() {
            for (x, y) in sums.iter_mut().zip(*partial) {
                *x += y;
            }
        }
        let centroids = &mut kc.writes[0];
        for c in 0..k {
            let count = sums[c * stride + dims];
            if count > 0.0 {
                for m in 0..dims {
                    centroids[c * dims + m] = sums[c * stride + m] / count;
                }
            }
            // Empty cluster: keep the previous centroid (already resident).
        }
    })
}

/// Build the streamed Kmeans program. `tiles == 1` with one partition is the
/// paper's non-streamed version.
pub fn build(ctx: &mut Context, cfg: &KmeansConfig) -> Result<KmeansBuffers> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let ranges = util::split_ranges(cfg.points, cfg.tiles);
    let tile_sizes: Vec<usize> = ranges
        .iter()
        .map(std::iter::ExactSizeIterator::len)
        .collect();

    let point_tiles: Vec<BufId> = tile_sizes
        .iter()
        .enumerate()
        .map(|(t, &n)| ctx.alloc(format!("pts{t}"), n * cfg.dims))
        .collect();
    let centroids = ctx.alloc("centroids", cfg.k * cfg.dims);
    let partials: Vec<BufId> = (0..tile_sizes.len())
        .map(|t| ctx.alloc(format!("partial{t}"), cfg.k * (cfg.dims + 1)))
        .collect();
    let bufs = KmeansBuffers {
        point_tiles,
        centroids,
        partials,
        tile_sizes,
    };
    record(ctx, cfg, &bufs)?;
    Ok(bufs)
}

/// Record the Kmeans action sequence (uploads, per-iteration assign/reduce
/// phases separated by barriers, final download) against already-allocated
/// buffers; used by [`build`] and by autotuning sweeps that replan the
/// stream geometry and re-record the same problem without reallocating.
pub fn record(ctx: &mut Context, cfg: &KmeansConfig, bufs: &KmeansBuffers) -> Result<()> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let streams = ctx.stream_count();

    // Upload points and the initial centroids, then synchronize.
    for (t, &buf) in bufs.point_tiles.iter().enumerate() {
        let s = ctx.stream(t % streams)?;
        ctx.h2d(s, buf)?;
    }
    let s0 = ctx.stream(0)?;
    ctx.h2d(s0, bufs.centroids)?;
    ctx.barrier();

    for iter in 0..cfg.iterations {
        for (t, &pts) in bufs.point_tiles.iter().enumerate() {
            let s = ctx.stream(t % streams)?;
            ctx.kernel(
                s,
                assign_kernel(format!("assign({t},{iter})"), cfg, bufs.tile_sizes[t])
                    .reading([pts, bufs.centroids])
                    .writing([bufs.partials[t]]),
            )?;
        }
        ctx.barrier();
        ctx.kernel(
            s0,
            reduce_kernel(format!("reduce({iter})"), cfg, bufs.tile_sizes.len())
                .reading(bufs.partials.iter().copied())
                .writing([bufs.centroids]),
        )?;
        ctx.barrier();
    }
    ctx.d2h(s0, bufs.centroids)?;
    Ok(())
}

/// Deterministic clustered input: `k` well-separated Gaussian-ish blobs.
/// Returns the flat `points × dims` data; initial centroids are the first
/// `k` points (written to the centroid buffer).
pub fn fill_inputs(
    ctx: &Context,
    cfg: &KmeansConfig,
    bufs: &KmeansBuffers,
    seed: u64,
) -> Result<Vec<f32>> {
    let mut r = util::rng(seed);
    use rand::Rng;
    let mut data = vec![0.0f32; cfg.points * cfg.dims];
    for (p, chunk) in data.chunks_mut(cfg.dims).enumerate() {
        let blob = p % cfg.k;
        for (m, x) in chunk.iter_mut().enumerate() {
            // Blob centers sit on a coarse lattice; spread is small so
            // assignments are numerically stable across summation orders.
            let center = (blob * 10 + m % 3) as f32;
            *x = center + r.gen_range(-0.5..0.5);
        }
    }
    let mut offset = 0usize;
    for (t, &buf) in bufs.point_tiles.iter().enumerate() {
        let n = bufs.tile_sizes[t];
        ctx.write_host(buf, &data[offset * cfg.dims..(offset + n) * cfg.dims])?;
        offset += n;
    }
    ctx.write_host(bufs.centroids, &data[..cfg.k * cfg.dims])?;
    Ok(data)
}

/// Serial reference: Lloyd's algorithm from the same initial centroids.
pub fn reference(cfg: &KmeansConfig, data: &[f32]) -> Vec<f32> {
    let (dims, k) = (cfg.dims, cfg.k);
    let mut centroids = data[..k * dims].to_vec();
    for _ in 0..cfg.iterations {
        let mut sums = vec![0.0f64; k * dims];
        let mut counts = vec![0u64; k];
        for pt in data.chunks(dims) {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let cen = &centroids[c * dims..(c + 1) * dims];
                let mut d = 0.0f32;
                for m in 0..dims {
                    let diff = pt[m] - cen[m];
                    d += diff * diff;
                }
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            for m in 0..dims {
                sums[best * dims + m] += pt[m] as f64;
            }
            counts[best] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                for m in 0..dims {
                    centroids[c * dims + m] = (sums[c * dims + m] / counts[c] as f64) as f32;
                }
            }
        }
    }
    centroids
}

/// Maximum centroid displacement between two centroid sets.
pub fn centroid_shift(a: &[f32], b: &[f32], dims: usize) -> f32 {
    a.chunks(dims)
        .zip(b.chunks(dims))
        .map(|(x, y)| {
            x.iter()
                .zip(y)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f32>()
                .sqrt()
        })
        .fold(0.0, f32::max)
}

/// Run Kmeans **to convergence** on the native executor: batches of
/// `cfg.iterations` Lloyd rounds run until the centroids move less than
/// `epsilon`, up to `max_batches` batches. The caller builds the program
/// with [`build`] and fills inputs first; the first batch runs that
/// recorded program (uploads included).
///
/// This exercises program reuse: after the first batch the points already
/// live in device memory, so subsequent batches are rebuilt (via
/// [`Context::reset_program`]) *without* the upload phase — the follow-up
/// programs contain kernels and synchronizations only.
pub fn converge_native(
    ctx: &mut Context,
    cfg: &KmeansConfig,
    bufs: &KmeansBuffers,
    epsilon: f32,
    max_batches: usize,
) -> Result<(Vec<f32>, usize)> {
    let mut prev: Option<Vec<f32>> = None;
    for batch in 1..=max_batches {
        ctx.run_native()?;
        let current = ctx.read_host(bufs.centroids)?;
        if let Some(p) = prev {
            if centroid_shift(&p, &current, cfg.dims) < epsilon {
                return Ok((current, batch));
            }
        }
        prev = Some(current);
        // Rebuild the per-batch program without the uploads: the device
        // copies of the points and centroids survive across runs.
        ctx.reset_program();
        let streams = ctx.stream_count();
        let s0 = ctx.stream(0)?;
        for iter in 0..cfg.iterations {
            for (t, &pts) in bufs.point_tiles.iter().enumerate() {
                let s = ctx.stream(t % streams)?;
                ctx.kernel(
                    s,
                    assign_kernel(format!("assign({t},{iter})"), cfg, bufs.tile_sizes[t])
                        .reading([pts, bufs.centroids])
                        .writing([bufs.partials[t]]),
                )?;
            }
            ctx.barrier();
            ctx.kernel(
                s0,
                reduce_kernel(format!("reduce({iter})"), cfg, bufs.tile_sizes.len())
                    .reading(bufs.partials.iter().copied())
                    .writing([bufs.centroids]),
            )?;
            ctx.barrier();
        }
        ctx.d2h(s0, bufs.centroids)?;
    }
    Ok((prev.expect("at least one batch ran"), max_batches))
}

/// Build + run on the simulator: returns seconds.
pub fn simulate(cfg: &KmeansConfig, platform: PlatformConfig, partitions: usize) -> Result<f64> {
    let mut ctx = Context::builder(platform).partitions(partitions).build()?;
    build(&mut ctx, cfg)?;
    Ok(ctx.run_sim()?.makespan().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::assert_close;

    fn small(iters: usize, tiles: usize) -> KmeansConfig {
        KmeansConfig {
            points: 512,
            dims: 6,
            k: 4,
            iterations: iters,
            tiles,
            alloc_micros: 5,
        }
    }

    #[test]
    fn validation() {
        assert!(small(1, 1).validate().is_ok());
        assert!(KmeansConfig {
            k: 600,
            ..small(1, 1)
        }
        .validate()
        .is_err());
        assert!(KmeansConfig {
            tiles: 0,
            ..small(1, 1)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn native_tiled_matches_reference() {
        let cfg = small(5, 4);
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let data = fill_inputs(&ctx, &cfg, &bufs, 99).unwrap();
        ctx.run_native().unwrap();
        let got = ctx.read_host(bufs.centroids).unwrap();
        let want = reference(&cfg, &data);
        assert_close(&got, &want, 1e-3, "kmeans centroids");
    }

    #[test]
    fn converges_to_blob_centers() {
        let cfg = small(10, 2);
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        fill_inputs(&ctx, &cfg, &bufs, 1).unwrap();
        ctx.run_native().unwrap();
        let got = ctx.read_host(bufs.centroids).unwrap();
        // Blob `b` sits near (10b, 10b+1, 10b+2, 10b, ...): check every
        // centroid is close to SOME blob center lattice point.
        for cen in got.chunks(cfg.dims) {
            let blob = (cen[0] / 10.0).round() as usize;
            for (m, &x) in cen.iter().enumerate() {
                let expect = (blob * 10 + m % 3) as f32;
                assert!(
                    (x - expect).abs() < 0.5,
                    "centroid {cen:?} far from blob {blob}"
                );
            }
        }
    }

    #[test]
    fn converge_native_stops_early_on_stable_blobs() {
        // Well-separated blobs converge in one or two Lloyd rounds; the
        // convergence loop must notice and stop long before max_batches.
        let cfg = KmeansConfig {
            points: 600,
            dims: 6,
            k: 4,
            iterations: 2, // per batch
            tiles: 4,
            alloc_micros: 5,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let data = fill_inputs(&ctx, &cfg, &bufs, 42).unwrap();
        let (centroids, batches) = converge_native(&mut ctx, &cfg, &bufs, 1e-4, 20).unwrap();
        assert!(batches < 20, "converged after {batches} batches");
        // Same fixed point as a long serial reference run.
        let long_ref = reference(
            &KmeansConfig {
                iterations: 100,
                ..cfg
            },
            &data,
        );
        crate::util::assert_close(&centroids, &long_ref, 1e-2, "converged centroids");
    }

    #[test]
    fn centroid_shift_measures_max_move() {
        let a = [0.0f32, 0.0, 3.0, 4.0];
        let b = [1.0f32, 0.0, 3.0, 4.0];
        assert_eq!(centroid_shift(&a, &b, 2), 1.0);
        assert_eq!(centroid_shift(&a, &a, 2), 0.0);
    }

    #[test]
    fn more_partitions_cut_alloc_overhead_in_sim() {
        // Fig. 9(c): execution time drops monotonically with partitions.
        let cfg = KmeansConfig {
            points: 112_000,
            dims: 34,
            k: 8,
            iterations: 10,
            tiles: 56,
            alloc_micros: 5,
        };
        let t1 = simulate(&cfg, PlatformConfig::phi_31sp(), 1).unwrap();
        let t8 = simulate(&cfg, PlatformConfig::phi_31sp(), 8).unwrap();
        let t56 = simulate(&cfg, PlatformConfig::phi_31sp(), 56).unwrap();
        assert!(t1 > t8 && t8 > t56, "kmeans: {t1} > {t8} > {t56}");
        assert!(t1 / t56 > 3.0, "drop should be steep: {}", t1 / t56);
    }

    #[test]
    fn streamed_beats_non_streamed_in_sim() {
        // Fig. 8(c): ~24% gain at the best configuration.
        let base = KmeansConfig {
            points: 1_120_000,
            dims: 34,
            k: 8,
            iterations: 20,
            tiles: 1,
            alloc_micros: 5,
        };
        let wo = simulate(&base, PlatformConfig::phi_31sp(), 1).unwrap();
        let w = simulate(
            &KmeansConfig { tiles: 4, ..base },
            PlatformConfig::phi_31sp(),
            4,
        )
        .unwrap();
        let gain = wo / w - 1.0;
        assert!(
            (0.05..1.0).contains(&gain),
            "kmeans streamed gain {:.1}% (paper: 24.1%)",
            gain * 100.0
        );
    }
}
