//! Cholesky Factorization (CF) — overlappable, multi-kernel, from the
//! hStreams SDK.
//!
//! `A = L·Lᵀ` for a symmetric positive-definite matrix, factored in place
//! over `t × t` square tiles with the right-looking algorithm. Each step `k`
//! runs three kernel classes — the paper notes CF "contains several kernels
//! between which an explicit synchronization is needed":
//!
//! 1. `POTRF` — factor the diagonal tile `(k,k)`;
//! 2. `TRSM`  — solve the panel tiles `(i,k)`, `i > k`;
//! 3. `SYRK`/`GEMM` — update the trailing submatrix.
//!
//! Synchronization is expressed with **events** (hStreams' mechanism), not
//! global barriers: each kernel waits only on the events of the tiles it
//! consumes, so trailing updates of step `k` overlap the panel work of step
//! `k+1` (natural lookahead). Finished panel tiles stream back to the host
//! immediately after their TRSM, overlapping the remaining compute — the
//! temporal-sharing win that gives CF the paper's largest streamed
//! improvement (24.1 %).
//!
//! The non-streamed "w/o" version (`tiles_per_dim == 1`) factors the whole
//! matrix in a single monolithic kernel, whose lower effective rate on the
//! very wide device (no tile-level cache blocking) is what the streamed
//! version's gain is measured against.

use hstreams::context::Context;
use hstreams::kernel::KernelDesc;
use hstreams::types::{BufId, Result, StreamId};
use micsim::compute::KernelProfile;
use micsim::PlatformConfig;

use crate::profiles;
use crate::util;

/// Problem description.
#[derive(Clone, Copy, Debug)]
pub struct CfConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Tiles per dimension (`1` = the non-streamed monolithic version).
    pub tiles_per_dim: usize,
}

impl CfConfig {
    /// Validate divisibility.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.n == 0 || self.tiles_per_dim == 0 {
            return Err("n and tiles_per_dim must be positive".into());
        }
        if !self.n.is_multiple_of(self.tiles_per_dim) {
            return Err(format!(
                "tiles_per_dim {} must divide n {}",
                self.tiles_per_dim, self.n
            ));
        }
        Ok(())
    }

    /// Tile edge.
    pub fn tile(&self) -> usize {
        self.n / self.tiles_per_dim
    }

    /// Flops of the factorization (`n³/3`).
    pub fn flops(&self) -> f64 {
        (self.n as f64).powi(3) / 3.0
    }
}

/// Buffer handles: the lower-triangle tiles, indexed via [`CfBuffers::at`].
pub struct CfBuffers {
    tiles_per_dim: usize,
    tile: usize,
    /// Lower-triangle tile buffers, packed row-major over `(i, j)`, `j <= i`.
    pub tiles: Vec<BufId>,
}

impl CfBuffers {
    fn lin(&self, i: usize, j: usize) -> usize {
        debug_assert!(j <= i && i < self.tiles_per_dim);
        i * (i + 1) / 2 + j
    }

    /// Buffer of tile `(i, j)`, `j <= i`.
    pub fn at(&self, i: usize, j: usize) -> BufId {
        self.tiles[self.lin(i, j)]
    }

    /// Tile edge length.
    pub fn tile(&self) -> usize {
        self.tile
    }
}

/// The monolithic whole-matrix kernel used by the `t = 1` version.
fn full_profile() -> KernelProfile {
    KernelProfile {
        name: "potrf_full".into(),
        thread_rate: 2.6e9,
        half_work_per_thread: 1.0e6,
        alloc_per_thread: micsim::SimDuration::ZERO,
        cache: micsim::compute::CacheProfile::Neutral,
    }
}

fn serial_potrf(a: &mut [f32], b: usize) {
    for j in 0..b {
        let mut d = a[j * b + j];
        for m in 0..j {
            d -= a[j * b + m] * a[j * b + m];
        }
        assert!(d > 0.0, "matrix not positive definite at column {j}");
        let d = d.sqrt();
        a[j * b + j] = d;
        for i in (j + 1)..b {
            let mut v = a[i * b + j];
            for m in 0..j {
                v -= a[i * b + m] * a[j * b + m];
            }
            a[i * b + j] = v / d;
        }
    }
    // Zero the strictly-upper part so tile comparisons are exact.
    for r in 0..b {
        for c in (r + 1)..b {
            a[r * b + c] = 0.0;
        }
    }
}

fn potrf_kernel(label: String, b: usize) -> KernelDesc {
    let work = (b as f64).powi(3) / 3.0;
    KernelDesc::simulated(label, profiles::cf_potrf(), work)
        .with_native(move |k| serial_potrf(k.writes[0], b))
}

/// `X := X · L^{-T}` where `X` is tile `(i,k)` and `L` the factored `(k,k)`.
fn trsm_kernel(label: String, b: usize) -> KernelDesc {
    let work = (b as f64).powi(3);
    KernelDesc::simulated(label, profiles::cf_trsm(), work).with_native(move |k| {
        let threads = k.threads;
        // Copy L out so the X slice can be chunked freely.
        let l: Vec<f32> = k.reads[0].to_vec();
        let x = &mut k.writes[0];
        hstreams::parallel::par_chunks_mut(x, threads.min(b), |_, _, chunk| {
            debug_assert_eq!(chunk.len() % b, 0);
            for row in chunk.chunks_mut(b) {
                for c in 0..b {
                    let mut v = row[c];
                    for m in 0..c {
                        v -= row[m] * l[c * b + m];
                    }
                    row[c] = v / l[c * b + c];
                }
            }
        });
    })
}

/// `A_ii -= L_ik · L_ikᵀ` (SYRK, lower half only).
fn syrk_kernel(label: String, b: usize) -> KernelDesc {
    let work = (b as f64).powi(3);
    KernelDesc::simulated(label, profiles::cf_update(), work).with_native(move |k| {
        let threads = k.threads;
        let lik: Vec<f32> = k.reads[0].to_vec();
        let a = &mut k.writes[0];
        hstreams::parallel::par_chunks_mut(a, threads.min(b), |_, offset, chunk| {
            for (ri, row) in chunk.chunks_mut(b).enumerate() {
                let r = offset / b + ri;
                for c in 0..=r {
                    let mut acc = 0.0f32;
                    for m in 0..b {
                        acc += lik[r * b + m] * lik[c * b + m];
                    }
                    row[c] -= acc;
                }
            }
        });
    })
}

/// `A_ij -= L_ik · L_jkᵀ` (GEMM update).
fn gemm_update_kernel(label: String, b: usize) -> KernelDesc {
    let work = 2.0 * (b as f64).powi(3);
    KernelDesc::simulated(label, profiles::cf_update(), work).with_native(move |k| {
        let threads = k.threads;
        let lik: Vec<f32> = k.reads[0].to_vec();
        let ljk: Vec<f32> = k.reads[1].to_vec();
        let a = &mut k.writes[0];
        hstreams::parallel::par_chunks_mut(a, threads.min(b), |_, offset, chunk| {
            for (ri, row) in chunk.chunks_mut(b).enumerate() {
                let r = offset / b + ri;
                for c in 0..b {
                    let mut acc = 0.0f32;
                    for m in 0..b {
                        acc += lik[r * b + m] * ljk[c * b + m];
                    }
                    row[c] -= acc;
                }
            }
        });
    })
}

/// Stream that owns tile `(i,j)`: all kernels writing the tile run there.
///
/// A multiplicative hash, not an affine mix: affine maps like `i + 31·j`
/// collapse to `(i − j) mod S` whenever `31 ≡ −1 (mod S)` (S = 16 streams,
/// say), putting every diagonal tile — the tiles with the most updates —
/// on one stream and serializing the trailing submatrix. The hash spreads
/// tile ownership statistically for any stream count.
fn stream_of(ctx: &Context, i: usize, j: usize, _tpd: usize) -> Result<StreamId> {
    let h = i
        .wrapping_mul(0x9E37_79B1)
        .wrapping_add(j.wrapping_mul(0x85EB_CA77))
        .wrapping_shr(7);
    ctx.stream(h % ctx.stream_count())
}

/// Build the CF program. Flow per step `k`: POTRF → barrier → TRSMs (with
/// immediate D2H of each finished panel tile) → barrier → SYRK/GEMM updates
/// → barrier. On a multi-card context, freshly factored tiles are mirrored
/// to the other cards before the phases that consume them.
pub fn build(ctx: &mut Context, cfg: &CfConfig) -> Result<CfBuffers> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let tpd = cfg.tiles_per_dim;
    let b = cfg.tile();

    let bufs = if tpd == 1 {
        // Monolithic non-streamed version.
        let n = cfg.n;
        let buf = ctx.alloc("A", n * n);
        CfBuffers {
            tiles_per_dim: 1,
            tile: n,
            tiles: vec![buf],
        }
    } else {
        let mut tiles = Vec::with_capacity(tpd * (tpd + 1) / 2);
        for i in 0..tpd {
            for j in 0..=i {
                tiles.push(ctx.alloc(format!("A{i}_{j}"), b * b));
            }
        }
        CfBuffers {
            tiles_per_dim: tpd,
            tile: b,
            tiles,
        }
    };
    record(ctx, cfg, &bufs)?;
    Ok(bufs)
}

/// Record the CF action sequence (uploads, per-step POTRF/TRSM/update
/// phases, panel downloads) against already-allocated tile buffers; used by
/// [`build`] and by autotuning sweeps that replan the stream geometry and
/// re-record the same problem without reallocating.
pub fn record(ctx: &mut Context, cfg: &CfConfig, bufs: &CfBuffers) -> Result<()> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let tpd = cfg.tiles_per_dim;
    let b = cfg.tile();

    if tpd == 1 {
        let n = cfg.n;
        let buf = bufs.tiles[0];
        let s = ctx.stream(0)?;
        ctx.h2d(s, buf)?;
        ctx.kernel(
            s,
            KernelDesc::simulated("potrf_full", full_profile(), cfg.flops())
                .writing([buf])
                .with_native(move |k| serial_potrf(k.writes[0], n)),
        )?;
        ctx.d2h(s, buf)?;
        return Ok(());
    }

    // Dependency tracking via the runtime's residency tracker: per
    // (tile, card) the current copy's producing stream + readiness event,
    // with demand-driven mirroring on multi-card platforms (Sec. VI's extra
    // transfers). CF's DAG has no write-after-read hazards (a tile version
    // that is read is never overwritten afterwards), which is exactly the
    // tracker's contract.
    let mut tracker = hstreams::ResidencyTracker::new();

    // Upload the lower triangle on each tile's owner stream.
    for i in 0..tpd {
        for j in 0..=i {
            let s = stream_of(ctx, i, j, tpd)?;
            ctx.h2d(s, bufs.at(i, j))?;
            tracker.produced(ctx, bufs.at(i, j), s)?;
        }
    }

    for k in 0..tpd {
        // POTRF runs on the HOST, as in the hStreams SDK sample: the
        // panel factorization is latency-bound and the Xeon beats any small
        // partition at it. Bring the tile up, factor, push it back.
        let s_kk = stream_of(ctx, k, k, tpd)?;
        tracker.ensure_readable(ctx, bufs.at(k, k), s_kk)?;
        ctx.d2h(s_kk, bufs.at(k, k))?;
        ctx.kernel(
            s_kk,
            potrf_kernel(format!("potrf({k})"), b)
                .on_host()
                .writing([bufs.at(k, k)]),
        )?;
        ctx.h2d(s_kk, bufs.at(k, k))?;
        tracker.produced(ctx, bufs.at(k, k), s_kk)?;

        // Panel TRSMs, each followed by the D2H of the now-final tile.
        for i in (k + 1)..tpd {
            let s = stream_of(ctx, i, k, tpd)?;
            tracker.ensure_readable(ctx, bufs.at(k, k), s)?;
            tracker.ensure_readable(ctx, bufs.at(i, k), s)?;
            ctx.kernel(
                s,
                trsm_kernel(format!("trsm({i},{k})"), b)
                    .reading([bufs.at(k, k)])
                    .writing([bufs.at(i, k)]),
            )?;
            ctx.d2h(s, bufs.at(i, k))?;
            tracker.produced(ctx, bufs.at(i, k), s)?;
        }

        // Trailing updates: each waits only on the panels it consumes.
        for i in (k + 1)..tpd {
            for j in (k + 1)..=i {
                let s = stream_of(ctx, i, j, tpd)?;
                tracker.ensure_readable(ctx, bufs.at(i, k), s)?;
                if i != j {
                    tracker.ensure_readable(ctx, bufs.at(j, k), s)?;
                }
                tracker.ensure_readable(ctx, bufs.at(i, j), s)?;
                if i == j {
                    ctx.kernel(
                        s,
                        syrk_kernel(format!("syrk({i},{k})"), b)
                            .reading([bufs.at(i, k)])
                            .writing([bufs.at(i, i)]),
                    )?;
                } else {
                    ctx.kernel(
                        s,
                        gemm_update_kernel(format!("gemm({i},{j},{k})"), b)
                            .reading([bufs.at(i, k), bufs.at(j, k)])
                            .writing([bufs.at(i, j)]),
                    )?;
                }
                tracker.produced(ctx, bufs.at(i, j), s)?;
            }
        }
    }
    Ok(())
}

/// Generate a deterministic SPD matrix (symmetric, diagonally dominant) and
/// write its lower-triangle tiles into the buffers. Returns the full matrix.
pub fn fill_inputs(ctx: &Context, cfg: &CfConfig, bufs: &CfBuffers, seed: u64) -> Result<Vec<f32>> {
    let n = cfg.n;
    let mut a = vec![0.0f32; n * n];
    let raw = util::random_vec(seed, n * n, 0.0, 1.0);
    for i in 0..n {
        for j in 0..=i {
            let v = raw[i * n + j];
            a[i * n + j] = v;
            a[j * n + i] = v;
        }
        a[i * n + i] = n as f32 + 1.0; // diagonal dominance ⇒ SPD
    }
    if cfg.tiles_per_dim == 1 {
        ctx.write_host(bufs.tiles[0], &a)?;
        return Ok(a);
    }
    let b = cfg.tile();
    for i in 0..cfg.tiles_per_dim {
        for j in 0..=i {
            let mut t = vec![0.0f32; b * b];
            for r in 0..b {
                let src = (i * b + r) * n + j * b;
                t[r * b..(r + 1) * b].copy_from_slice(&a[src..src + b]);
            }
            ctx.write_host(bufs.at(i, j), &t)?;
        }
    }
    Ok(a)
}

/// Serial reference factorization of the full matrix; returns `L` with the
/// strictly-upper part zeroed.
pub fn reference(a: &[f32], n: usize) -> Vec<f32> {
    let mut l = a.to_vec();
    serial_potrf(&mut l, n);
    l
}

/// Assemble the factored lower triangle from the context's host buffers.
pub fn collect_result(ctx: &Context, cfg: &CfConfig, bufs: &CfBuffers) -> Result<Vec<f32>> {
    let n = cfg.n;
    if cfg.tiles_per_dim == 1 {
        return ctx.read_host(bufs.tiles[0]);
    }
    let b = cfg.tile();
    let mut l = vec![0.0f32; n * n];
    for i in 0..cfg.tiles_per_dim {
        for j in 0..=i {
            let t = ctx.read_host(bufs.at(i, j))?;
            for r in 0..b {
                let dst = (i * b + r) * n + j * b;
                l[dst..dst + b].copy_from_slice(&t[r * b..(r + 1) * b]);
            }
        }
    }
    // Off-diagonal upper tiles were never stored, so the assembled upper
    // half is already zero; diagonal tiles carry their own upper zeros.
    Ok(l)
}

/// Build + run on the simulator: returns (seconds, GFLOPS).
pub fn simulate(cfg: &CfConfig, platform: PlatformConfig, partitions: usize) -> Result<(f64, f64)> {
    let mut ctx = Context::builder(platform).partitions(partitions).build()?;
    build(&mut ctx, cfg)?;
    let report = ctx.run_sim()?;
    let secs = report.makespan().as_secs_f64();
    Ok((secs, cfg.flops() / secs / 1e9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::assert_close;

    #[test]
    fn config_and_indexing() {
        let cfg = CfConfig {
            n: 9600,
            tiles_per_dim: 12,
        };
        cfg.validate().unwrap();
        assert_eq!(cfg.tile(), 800);
        assert!(CfConfig {
            n: 10,
            tiles_per_dim: 3
        }
        .validate()
        .is_err());
    }

    #[test]
    fn serial_potrf_reconstructs_matrix() {
        let n = 24;
        let cfg = CfConfig {
            n,
            tiles_per_dim: 1,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let a = fill_inputs(&ctx, &cfg, &bufs, 3).unwrap();
        let l = reference(&a, n);
        // L·Lᵀ == A
        let mut recon = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for m in 0..n {
                    acc += l[i * n + m] * l[j * n + m];
                }
                recon[i * n + j] = acc;
            }
        }
        assert_close(&recon, &a, 1e-3, "L*L^T == A");
    }

    #[test]
    fn native_tiled_matches_reference() {
        let cfg = CfConfig {
            n: 48,
            tiles_per_dim: 4,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let a = fill_inputs(&ctx, &cfg, &bufs, 11).unwrap();
        ctx.run_native().unwrap();
        let l = collect_result(&ctx, &cfg, &bufs).unwrap();
        let want = reference(&a, cfg.n);
        assert_close(&l, &want, 2e-3, "tiled CF vs serial");
    }

    #[test]
    fn native_monolithic_matches_reference() {
        let cfg = CfConfig {
            n: 32,
            tiles_per_dim: 1,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let a = fill_inputs(&ctx, &cfg, &bufs, 5).unwrap();
        ctx.run_native().unwrap();
        let l = collect_result(&ctx, &cfg, &bufs).unwrap();
        assert_close(&l, &reference(&a, cfg.n), 2e-3, "monolithic CF");
    }

    #[test]
    fn streamed_sim_beats_monolithic_by_paper_margin() {
        // Fig. 8(b): CF gains ~24% from streams.
        let n = 9600;
        let (wo_secs, wo_gf) = simulate(
            &CfConfig {
                n,
                tiles_per_dim: 1,
            },
            PlatformConfig::phi_31sp(),
            1,
        )
        .unwrap();
        let (w_secs, w_gf) = simulate(
            &CfConfig {
                n,
                tiles_per_dim: 12,
            },
            PlatformConfig::phi_31sp(),
            4,
        )
        .unwrap();
        assert!(w_secs < wo_secs);
        let gain = w_gf / wo_gf - 1.0;
        assert!(
            (0.05..0.45).contains(&gain),
            "CF gain should be large (paper: 24.1%), got {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn two_mics_help_but_fall_short_of_projection() {
        // Fig. 11: 2 cards beat 1 but stay below the projected 2x.
        let cfg = CfConfig {
            n: 14000,
            tiles_per_dim: 14,
        };
        let (one, _) = simulate(&cfg, PlatformConfig::phi_31sp(), 4).unwrap();
        let (two, _) = simulate(&cfg, PlatformConfig::phi_31sp_multi(2), 4).unwrap();
        assert!(two < one, "2 MICs ({two}s) must beat 1 ({one}s)");
        assert!(
            two > one / 2.0,
            "2 MICs must fall short of the 2x projection: {two} vs {}",
            one / 2.0
        );
        let speedup = one / two;
        assert!(
            (1.15..1.95).contains(&speedup),
            "speedup {speedup} should be meaningful but sub-linear"
        );
    }

    #[test]
    fn native_two_device_run_is_correct() {
        let cfg = CfConfig {
            n: 48,
            tiles_per_dim: 4,
        };
        let mut ctx = Context::builder(PlatformConfig::phi_31sp_multi(2))
            .partitions(2)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let a = fill_inputs(&ctx, &cfg, &bufs, 77).unwrap();
        ctx.run_native().unwrap();
        let l = collect_result(&ctx, &cfg, &bufs).unwrap();
        assert_close(&l, &reference(&a, cfg.n), 2e-3, "2-device CF");
    }

    #[test]
    fn sim_gflops_in_paper_band() {
        let (_, gf) = simulate(
            &CfConfig {
                n: 9600,
                tiles_per_dim: 12,
            },
            PlatformConfig::phi_31sp(),
            4,
        )
        .unwrap();
        assert!(
            (120.0..500.0).contains(&gf),
            "CF ≈ paper's 128-512 GFLOPS band, got {gf}"
        );
    }
}
