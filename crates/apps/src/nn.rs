//! NN (Nearest Neighbor) — overlappable and transfer-bound, from Rodinia.
//!
//! Finds the `k` records closest to a target coordinate among millions of
//! `(latitude, longitude)` records. Each tile of records streams to the
//! device, a kernel computes the Euclidean distances, and the distance
//! array streams straight back (Fig. 4(e) — same flow as MM). The kernel is
//! trivially cheap, so the run is dominated by the PCIe transfers; streams
//! help exactly as far as they hide kernel time under the serial link
//! (Fig. 9(e): improvement saturates at P = 4; Fig. 10(e): T barely
//! matters). The final k-selection runs on the host, as in Rodinia.

use hstreams::context::Context;
use hstreams::kernel::KernelDesc;
use hstreams::types::{BufId, Result};
use micsim::PlatformConfig;

use crate::profiles;
use crate::util;

/// Problem description.
#[derive(Clone, Copy, Debug)]
pub struct NnConfig {
    /// Number of records.
    pub records: usize,
    /// Number of record tiles.
    pub tiles: usize,
    /// Neighbours to report (the paper uses 10).
    pub k: usize,
    /// Target coordinate (the paper uses (40, 120)).
    pub target: (f32, f32),
}

impl NnConfig {
    /// The paper's Fig. 9(e) setup.
    pub fn paper_fig9() -> NnConfig {
        NnConfig {
            records: 5_242_880,
            tiles: 512,
            k: 10,
            target: (40.0, 120.0),
        }
    }

    /// Validate.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.records == 0 || self.tiles == 0 || self.k == 0 {
            return Err("records, tiles and k must be positive".into());
        }
        if self.tiles > self.records {
            return Err("more tiles than records".into());
        }
        if self.k > self.records {
            return Err("k exceeds record count".into());
        }
        Ok(())
    }
}

/// Buffer handles of a built NN program.
pub struct NnBuffers {
    /// Record tiles (`chunk × 2`, interleaved lat/lng).
    pub record_tiles: Vec<BufId>,
    /// Distance tiles (`chunk`).
    pub dist_tiles: Vec<BufId>,
    /// Records per tile.
    pub tile_sizes: Vec<usize>,
}

fn distance_kernel(label: String, chunk: usize, target: (f32, f32)) -> KernelDesc {
    KernelDesc::simulated(label, profiles::nn_distance(), chunk as f64).with_native(move |kc| {
        let recs = kc.reads[0];
        let threads = kc.threads;
        let out = &mut kc.writes[0];
        hstreams::parallel::par_chunks_mut(out, threads, |_, offset, chunk_out| {
            for (i, d) in chunk_out.iter_mut().enumerate() {
                let r = offset + i;
                let lat = recs[r * 2];
                let lng = recs[r * 2 + 1];
                *d = ((lat - target.0).powi(2) + (lng - target.1).powi(2)).sqrt();
            }
        });
    })
}

/// Build the streamed NN program (`tiles == 1`, one partition = "w/o").
pub fn build(ctx: &mut Context, cfg: &NnConfig) -> Result<NnBuffers> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let ranges = util::split_ranges(cfg.records, cfg.tiles);
    let tile_sizes: Vec<usize> = ranges
        .iter()
        .map(std::iter::ExactSizeIterator::len)
        .collect();
    let record_tiles: Vec<BufId> = tile_sizes
        .iter()
        .enumerate()
        .map(|(t, &n)| ctx.alloc(format!("rec{t}"), n * 2))
        .collect();
    let dist_tiles: Vec<BufId> = tile_sizes
        .iter()
        .enumerate()
        .map(|(t, &n)| ctx.alloc(format!("dist{t}"), n))
        .collect();
    let bufs = NnBuffers {
        record_tiles,
        dist_tiles,
        tile_sizes,
    };
    record(ctx, cfg, &bufs)?;
    Ok(bufs)
}

/// Record the NN action sequence against already-allocated buffers; used by
/// [`build`] and by autotuning sweeps that replan the stream geometry and
/// re-record the same problem without reallocating.
pub fn record(ctx: &mut Context, cfg: &NnConfig, bufs: &NnBuffers) -> Result<()> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let streams = ctx.stream_count();
    for t in 0..bufs.tile_sizes.len() {
        let s = ctx.stream(t % streams)?;
        ctx.h2d(s, bufs.record_tiles[t])?;
        ctx.kernel(
            s,
            distance_kernel(format!("nn({t})"), bufs.tile_sizes[t], cfg.target)
                .reading([bufs.record_tiles[t]])
                .writing([bufs.dist_tiles[t]]),
        )?;
        ctx.d2h(s, bufs.dist_tiles[t])?;
    }
    Ok(())
}

/// Deterministic random records; returns the flat `records × 2` data.
pub fn fill_inputs(ctx: &Context, cfg: &NnConfig, bufs: &NnBuffers, seed: u64) -> Result<Vec<f32>> {
    let data = util::random_vec(seed, cfg.records * 2, 0.0, 180.0);
    let mut offset = 0usize;
    for (t, &buf) in bufs.record_tiles.iter().enumerate() {
        let n = bufs.tile_sizes[t];
        ctx.write_host(buf, &data[offset * 2..(offset + n) * 2])?;
        offset += n;
    }
    Ok(data)
}

/// Host-side k-selection over the streamed-back distance tiles: returns the
/// `k` nearest as `(record_index, distance)`, ascending.
pub fn select_neighbors(
    ctx: &Context,
    cfg: &NnConfig,
    bufs: &NnBuffers,
) -> Result<Vec<(usize, f32)>> {
    let mut best: Vec<(usize, f32)> = Vec::with_capacity(cfg.k + 1);
    let mut offset = 0usize;
    for (t, &buf) in bufs.dist_tiles.iter().enumerate() {
        let dists = ctx.read_host(buf)?;
        for (i, &d) in dists.iter().enumerate() {
            let idx = offset + i;
            if best.len() < cfg.k {
                best.push((idx, d));
                best.sort_by(|a, b| a.1.total_cmp(&b.1));
            } else if d < best[cfg.k - 1].1 {
                best[cfg.k - 1] = (idx, d);
                best.sort_by(|a, b| a.1.total_cmp(&b.1));
            }
        }
        offset += bufs.tile_sizes[t];
    }
    Ok(best)
}

/// Serial reference: full distance scan + k-selection.
pub fn reference(cfg: &NnConfig, data: &[f32]) -> Vec<(usize, f32)> {
    let mut all: Vec<(usize, f32)> = data
        .chunks(2)
        .enumerate()
        .map(|(i, r)| {
            (
                i,
                ((r[0] - cfg.target.0).powi(2) + (r[1] - cfg.target.1).powi(2)).sqrt(),
            )
        })
        .collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1));
    all.truncate(cfg.k);
    all
}

/// Build + run on the simulator: returns milliseconds.
pub fn simulate(cfg: &NnConfig, platform: PlatformConfig, partitions: usize) -> Result<f64> {
    let mut ctx = Context::builder(platform).partitions(partitions).build()?;
    build(&mut ctx, cfg)?;
    Ok(ctx.run_sim()?.makespan().as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(tiles: usize) -> NnConfig {
        NnConfig {
            records: 4096,
            tiles,
            k: 10,
            target: (40.0, 120.0),
        }
    }

    #[test]
    fn validation() {
        assert!(small(4).validate().is_ok());
        assert!(NnConfig {
            tiles: 0,
            ..small(1)
        }
        .validate()
        .is_err());
        assert!(NnConfig { k: 0, ..small(1) }.validate().is_err());
        assert!(NnConfig {
            records: 4,
            k: 10,
            tiles: 1,
            target: (0.0, 0.0)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn native_neighbors_match_reference() {
        let cfg = small(8);
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(4)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let data = fill_inputs(&ctx, &cfg, &bufs, 21).unwrap();
        ctx.run_native().unwrap();
        let got = select_neighbors(&ctx, &cfg, &bufs).unwrap();
        let want = reference(&cfg, &data);
        assert_eq!(got.len(), cfg.k);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0, w.0, "neighbor indices: {got:?} vs {want:?}");
            assert!((g.1 - w.1).abs() < 1e-4);
        }
    }

    #[test]
    fn single_tile_matches_too() {
        let cfg = small(1);
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let data = fill_inputs(&ctx, &cfg, &bufs, 5).unwrap();
        ctx.run_native().unwrap();
        let got = select_neighbors(&ctx, &cfg, &bufs).unwrap();
        assert_eq!(got, reference(&cfg, &data));
    }

    #[test]
    fn partition_sweep_saturates_after_four() {
        // Fig. 9(e): time falls until P≈4, then flattens (link-bound).
        let cfg = NnConfig {
            records: 5_242_880,
            tiles: 512,
            k: 10,
            target: (40.0, 120.0),
        };
        let t1 = simulate(&cfg, PlatformConfig::phi_31sp(), 1).unwrap();
        let t4 = simulate(&cfg, PlatformConfig::phi_31sp(), 4).unwrap();
        let t16 = simulate(&cfg, PlatformConfig::phi_31sp(), 16).unwrap();
        let t48 = simulate(&cfg, PlatformConfig::phi_31sp(), 48).unwrap();
        assert!(t1 > t4 * 1.3, "sharp initial drop: {t1} vs {t4}");
        let flat = (t16 - t48).abs() / t16;
        assert!(flat < 0.15, "flat tail: t16={t16} t48={t48}");
        assert!(t4 < t1 && t16 <= t4 * 1.05);
    }

    #[test]
    fn streamed_gain_is_modest_in_sim() {
        // Fig. 8(e): ~9% average gain — transfer-bound app.
        let records = 2 << 20;
        let wo = simulate(
            &NnConfig {
                records,
                tiles: 1,
                k: 10,
                target: (40.0, 120.0),
            },
            PlatformConfig::phi_31sp(),
            1,
        )
        .unwrap();
        let w = simulate(
            &NnConfig {
                records,
                tiles: 8,
                k: 10,
                target: (40.0, 120.0),
            },
            PlatformConfig::phi_31sp(),
            4,
        )
        .unwrap();
        let gain = wo / w - 1.0;
        assert!(
            (0.02..0.40).contains(&gain),
            "NN gain {:.1}% should be modest",
            gain * 100.0
        );
    }
}
