//! SRAD (Speckle Reducing Anisotropic Diffusion) — non-overlappable,
//! multi-kernel, from Rodinia.
//!
//! Removes speckle noise from an (ultrasound) image without destroying
//! features. Every iteration runs **three** kernel classes with device-wide
//! synchronization between them (Fig. 4(f)):
//!
//! 1. `reduce` — per-tile sum and sum-of-squares of the image;
//! 2. `q0` — the global speckle statistic `q0² = var/mean²` (one tiny
//!    kernel, feeding every tile);
//! 3. `coeff` — per-pixel diffusion coefficients from the image gradients
//!    and `q0²`;
//! 4. `update` — per-pixel diffusion step (double-buffered).
//!
//! With barriers everywhere SRAD can only exploit *spatial* sharing; the
//! paper finds it loses on small inputs and — unexpectedly — wins on large
//! ones (Fig. 8(f)), with a U-shaped partition curve (Fig. 9(f)) and a very
//! fine-grained optimal tiling (T = 400, Fig. 10(f)).

use hstreams::context::Context;
use hstreams::kernel::KernelDesc;
use hstreams::types::{BufId, Result};
use micsim::PlatformConfig;

use crate::profiles;
use crate::util;

/// Problem description.
#[derive(Clone, Copy, Debug)]
pub struct SradConfig {
    /// Image rows.
    pub rows: usize,
    /// Image columns.
    pub cols: usize,
    /// Diffusion strength λ (the paper uses 0.5).
    pub lambda: f32,
    /// Iterations (the paper uses 100).
    pub iterations: usize,
    /// Number of row-block tiles.
    pub tiles: usize,
}

impl SradConfig {
    /// Validate.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.rows == 0 || self.cols == 0 || self.tiles == 0 {
            return Err("rows, cols and tiles must be positive".into());
        }
        if self.tiles > self.rows {
            return Err(format!("tiles {} exceeds rows {}", self.tiles, self.rows));
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err("lambda must be in 0..=1".into());
        }
        Ok(())
    }
}

/// Buffer handles of a built SRAD program.
pub struct SradBuffers {
    /// Ping image blocks.
    pub img_a: Vec<BufId>,
    /// Pong image blocks.
    pub img_b: Vec<BufId>,
    /// Per-tile diffusion-coefficient blocks.
    pub coeff: Vec<BufId>,
    /// Per-tile statistics `(sum, sum_sq)`.
    pub stats: Vec<BufId>,
    /// The global `q0²` scalar.
    pub q0: BufId,
    /// Rows per tile.
    pub tile_rows: Vec<usize>,
    /// Which buffer set holds the final image (`true` = `img_a`).
    pub result_in_a: bool,
}

fn reduce_kernel(label: String, pixels: usize) -> KernelDesc {
    KernelDesc::simulated(label, profiles::srad_reduce(), pixels as f64).with_native(move |kc| {
        let img = kc.reads[0];
        let threads = kc.threads;
        let (sum, sum_sq) = hstreams::parallel::par_reduce(
            img.len(),
            threads,
            |range| {
                let mut s = 0.0f64;
                let mut s2 = 0.0f64;
                for i in range {
                    let v = img[i] as f64;
                    s += v;
                    s2 += v * v;
                }
                (s, s2)
            },
            |a, b| (a.0 + b.0, a.1 + b.1),
            (0.0f64, 0.0f64),
        );
        kc.writes[0][0] = sum as f32;
        kc.writes[0][1] = sum_sq as f32;
    })
}

fn q0_kernel(label: String, total_pixels: usize, tiles: usize) -> KernelDesc {
    KernelDesc::simulated(label, profiles::srad_reduce(), tiles as f64).with_native(move |kc| {
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for stats in kc.reads.iter() {
            sum += stats[0] as f64;
            sum_sq += stats[1] as f64;
        }
        let n = total_pixels as f64;
        let mean = sum / n;
        let var = (sum_sq / n) - mean * mean;
        kc.writes[0][0] = (var / (mean * mean)).max(0.0) as f32;
    })
}

#[derive(Clone, Copy)]
struct TileShape {
    rows: usize,
    cols: usize,
    has_above: bool,
    has_below: bool,
}

/// Diffusion coefficient per pixel. Read order: `[own, above?, below?, q0]`.
fn coeff_kernel(label: String, shape: TileShape) -> KernelDesc {
    let work = (shape.rows * shape.cols) as f64;
    KernelDesc::simulated(label, profiles::srad_coeff(), work).with_native(move |kc| {
        let own = kc.reads[0];
        let mut idx = 1;
        let above = shape.has_above.then(|| {
            idx += 1;
            kc.reads[idx - 1]
        });
        let below = shape.has_below.then(|| {
            idx += 1;
            kc.reads[idx - 1]
        });
        let q0 = kc.reads[idx][0];
        let (rows, cols) = (shape.rows, shape.cols);
        let threads = kc.threads;
        let out = &mut kc.writes[0];
        hstreams::parallel::par_chunks_mut(out, threads.min(rows), |_, offset, chunk| {
            for (ri, row_out) in chunk.chunks_mut(cols).enumerate() {
                let r = offset / cols + ri;
                for c in 0..cols {
                    let center = own[r * cols + c];
                    let north = if r > 0 {
                        own[(r - 1) * cols + c]
                    } else if let Some(ab) = above {
                        ab[(ab.len() / cols - 1) * cols + c]
                    } else {
                        center
                    };
                    let south = if r + 1 < rows {
                        own[(r + 1) * cols + c]
                    } else if let Some(be) = below {
                        be[c]
                    } else {
                        center
                    };
                    let west = if c > 0 { own[r * cols + c - 1] } else { center };
                    let east = if c + 1 < cols {
                        own[r * cols + c + 1]
                    } else {
                        center
                    };
                    let dn = north - center;
                    let ds = south - center;
                    let dw = west - center;
                    let de = east - center;
                    let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (center * center);
                    let l = (dn + ds + dw + de) / center;
                    let num = 0.5 * g2 - 0.0625 * l * l;
                    let den = 1.0 + 0.25 * l;
                    let qsq = num / (den * den);
                    let c_val = 1.0 / (1.0 + (qsq - q0) / (q0 * (1.0 + q0)));
                    row_out[c] = c_val.clamp(0.0, 1.0);
                }
            }
        });
    })
}

/// Diffusion update. Read order:
/// `[own_img, above_img?, below_img?, own_c, below_c?]` — the north
/// difference at a tile's first row needs the above tile's last image row.
fn update_kernel(label: String, shape: TileShape, lambda: f32) -> KernelDesc {
    let work = (shape.rows * shape.cols) as f64;
    KernelDesc::simulated(label, profiles::srad_update(), work).with_native(move |kc| {
        let own = kc.reads[0];
        let mut idx = 1;
        let above_img = shape.has_above.then(|| {
            idx += 1;
            kc.reads[idx - 1]
        });
        let below_img = shape.has_below.then(|| {
            idx += 1;
            kc.reads[idx - 1]
        });
        let cown = kc.reads[idx];
        idx += 1;
        let below_c = shape.has_below.then(|| {
            idx += 1;
            kc.reads[idx - 1]
        });
        let _ = idx;
        let (rows, cols) = (shape.rows, shape.cols);
        let threads = kc.threads;
        let out = &mut kc.writes[0];
        hstreams::parallel::par_chunks_mut(out, threads.min(rows), |_, offset, chunk| {
            for (ri, row_out) in chunk.chunks_mut(cols).enumerate() {
                let r = offset / cols + ri;
                for c in 0..cols {
                    let center = own[r * cols + c];
                    // Divergence uses c at the pixel (N and W fluxes) and at
                    // the south / east neighbours (Rodinia convention).
                    let c_here = cown[r * cols + c];
                    let c_south = if r + 1 < rows {
                        cown[(r + 1) * cols + c]
                    } else if let Some(bc) = below_c {
                        bc[c]
                    } else {
                        c_here
                    };
                    let c_east = if c + 1 < cols {
                        cown[r * cols + c + 1]
                    } else {
                        c_here
                    };
                    let south = if r + 1 < rows {
                        own[(r + 1) * cols + c]
                    } else if let Some(bi) = below_img {
                        bi[c]
                    } else {
                        center
                    };
                    let east = if c + 1 < cols {
                        own[r * cols + c + 1]
                    } else {
                        center
                    };
                    let north = if r > 0 {
                        own[(r - 1) * cols + c]
                    } else if let Some(ai) = above_img {
                        ai[(ai.len() / cols - 1) * cols + c]
                    } else {
                        center
                    };
                    let west = if c > 0 { own[r * cols + c - 1] } else { center };
                    let dn = north - center;
                    let ds = south - center;
                    let dw = west - center;
                    let de = east - center;
                    let div = c_south * ds + c_here * dn + c_east * de + c_here * dw;
                    row_out[c] = center + 0.25 * lambda * div;
                }
            }
        });
    })
}

/// Build the SRAD program (`tiles == 1`, one partition = "w/o").
#[allow(clippy::needless_range_loop)]
pub fn build(ctx: &mut Context, cfg: &SradConfig) -> Result<SradBuffers> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let streams = ctx.stream_count();
    let ranges = util::split_ranges(cfg.rows, cfg.tiles);
    let tile_rows: Vec<usize> = ranges
        .iter()
        .map(std::iter::ExactSizeIterator::len)
        .collect();
    let nt = tile_rows.len();
    let cols = cfg.cols;

    let img_a: Vec<BufId> = (0..nt)
        .map(|t| ctx.alloc(format!("imgA{t}"), tile_rows[t] * cols))
        .collect();
    let img_b: Vec<BufId> = (0..nt)
        .map(|t| ctx.alloc(format!("imgB{t}"), tile_rows[t] * cols))
        .collect();
    let coeff: Vec<BufId> = (0..nt)
        .map(|t| ctx.alloc(format!("coeff{t}"), tile_rows[t] * cols))
        .collect();
    let stats: Vec<BufId> = (0..nt).map(|t| ctx.alloc(format!("stats{t}"), 2)).collect();
    let q0 = ctx.alloc("q0", 1);

    for t in 0..nt {
        let s = ctx.stream(t % streams)?;
        ctx.h2d(s, img_a[t])?;
    }
    ctx.barrier();

    let s0 = ctx.stream(0)?;
    let mut src = &img_a;
    let mut dst = &img_b;
    for iter in 0..cfg.iterations {
        // 1. Per-tile statistics.
        for t in 0..nt {
            let s = ctx.stream(t % streams)?;
            ctx.kernel(
                s,
                reduce_kernel(format!("reduce({t},{iter})"), tile_rows[t] * cols)
                    .reading([src[t]])
                    .writing([stats[t]]),
            )?;
        }
        ctx.barrier();
        // 2. Global statistic.
        ctx.kernel(
            s0,
            q0_kernel(format!("q0({iter})"), cfg.rows * cols, nt)
                .reading(stats.iter().copied())
                .writing([q0]),
        )?;
        ctx.barrier();
        // 3. Diffusion coefficients.
        for t in 0..nt {
            let s = ctx.stream(t % streams)?;
            let mut reads = vec![src[t]];
            if t > 0 {
                reads.push(src[t - 1]);
            }
            if t + 1 < nt {
                reads.push(src[t + 1]);
            }
            reads.push(q0);
            ctx.kernel(
                s,
                coeff_kernel(
                    format!("coeff({t},{iter})"),
                    TileShape {
                        rows: tile_rows[t],
                        cols,
                        has_above: t > 0,
                        has_below: t + 1 < nt,
                    },
                )
                .reading(reads)
                .writing([coeff[t]]),
            )?;
        }
        ctx.barrier();
        // 4. Update: needs own/above/below image rows, plus own and below
        //    coefficients (Rodinia's divergence pulls c from the pixel and
        //    its south/east neighbours only).
        for t in 0..nt {
            let s = ctx.stream(t % streams)?;
            let mut reads = vec![src[t]];
            if t > 0 {
                reads.push(src[t - 1]);
            }
            if t + 1 < nt {
                reads.push(src[t + 1]);
            }
            reads.push(coeff[t]);
            if t + 1 < nt {
                reads.push(coeff[t + 1]);
            }
            ctx.kernel(
                s,
                update_kernel(
                    format!("update({t},{iter})"),
                    TileShape {
                        rows: tile_rows[t],
                        cols,
                        has_above: t > 0,
                        has_below: t + 1 < nt,
                    },
                    cfg.lambda,
                )
                .reading(reads)
                .writing([dst[t]]),
            )?;
        }
        ctx.barrier();
        std::mem::swap(&mut src, &mut dst);
    }

    for t in 0..nt {
        let s = ctx.stream(t % streams)?;
        ctx.d2h(s, src[t])?;
    }
    let result_in_a = std::ptr::eq(src, &img_a);
    Ok(SradBuffers {
        img_a,
        img_b,
        coeff,
        stats,
        q0,
        tile_rows,
        result_in_a,
    })
}

/// Deterministic noisy "ultrasound" image, strictly positive; returns the
/// full grid.
pub fn fill_inputs(
    ctx: &Context,
    cfg: &SradConfig,
    bufs: &SradBuffers,
    seed: u64,
) -> Result<Vec<f32>> {
    let img = util::random_vec(seed, cfg.rows * cfg.cols, 10.0, 200.0);
    let mut row0 = 0usize;
    for (t, &rows) in bufs.tile_rows.iter().enumerate() {
        let lo = row0 * cfg.cols;
        ctx.write_host(bufs.img_a[t], &img[lo..lo + rows * cfg.cols])?;
        row0 += rows;
    }
    Ok(img)
}

/// Serial reference SRAD on the full image.
pub fn reference(cfg: &SradConfig, img0: &[f32]) -> Vec<f32> {
    let (rows, cols) = (cfg.rows, cfg.cols);
    let n = (rows * cols) as f64;
    let mut src = img0.to_vec();
    let mut dst = vec![0.0f32; rows * cols];
    let mut cmap = vec![0.0f32; rows * cols];
    let at = |v: &[f32], r: isize, c: isize| -> f32 {
        let r = r.clamp(0, rows as isize - 1) as usize;
        let c = c.clamp(0, cols as isize - 1) as usize;
        v[r * cols + c]
    };
    for _ in 0..cfg.iterations {
        let sum: f64 = src.iter().map(|&x| x as f64).sum();
        let sum_sq: f64 = src.iter().map(|&x| (x as f64) * (x as f64)).sum();
        let mean = sum / n;
        let var = sum_sq / n - mean * mean;
        let q0 = (var / (mean * mean)).max(0.0) as f32;
        for r in 0..rows as isize {
            for c in 0..cols as isize {
                let center = at(&src, r, c);
                let dn = at(&src, r - 1, c) - center;
                let ds = at(&src, r + 1, c) - center;
                let dw = at(&src, r, c - 1) - center;
                let de = at(&src, r, c + 1) - center;
                let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (center * center);
                let l = (dn + ds + dw + de) / center;
                let num = 0.5 * g2 - 0.0625 * l * l;
                let den = 1.0 + 0.25 * l;
                let qsq = num / (den * den);
                let c_val = 1.0 / (1.0 + (qsq - q0) / (q0 * (1.0 + q0)));
                cmap[r as usize * cols + c as usize] = c_val.clamp(0.0, 1.0);
            }
        }
        for r in 0..rows as isize {
            for c in 0..cols as isize {
                let center = at(&src, r, c);
                let c_here = at(&cmap, r, c);
                let c_south = at(&cmap, r + 1, c);
                let c_east = at(&cmap, r, c + 1);
                let dn = at(&src, r - 1, c) - center;
                let ds = at(&src, r + 1, c) - center;
                let dw = at(&src, r, c - 1) - center;
                let de = at(&src, r, c + 1) - center;
                let div = c_south * ds + c_here * dn + c_east * de + c_here * dw;
                dst[r as usize * cols + c as usize] = center + 0.25 * cfg.lambda * div;
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

/// Assemble the final image from the context's host buffers.
pub fn collect_result(ctx: &Context, cfg: &SradConfig, bufs: &SradBuffers) -> Result<Vec<f32>> {
    let result = if bufs.result_in_a {
        &bufs.img_a
    } else {
        &bufs.img_b
    };
    let mut img = vec![0.0f32; cfg.rows * cfg.cols];
    let mut row0 = 0usize;
    for (t, &rows) in bufs.tile_rows.iter().enumerate() {
        let data = ctx.read_host(result[t])?;
        let lo = row0 * cfg.cols;
        img[lo..lo + rows * cfg.cols].copy_from_slice(&data);
        row0 += rows;
    }
    Ok(img)
}

/// Build + run on the simulator: returns seconds.
pub fn simulate(cfg: &SradConfig, platform: PlatformConfig, partitions: usize) -> Result<f64> {
    let mut ctx = Context::builder(platform).partitions(partitions).build()?;
    build(&mut ctx, cfg)?;
    Ok(ctx.run_sim()?.makespan().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::assert_close;

    fn small(iters: usize, tiles: usize) -> SradConfig {
        SradConfig {
            rows: 24,
            cols: 20,
            lambda: 0.5,
            iterations: iters,
            tiles,
        }
    }

    #[test]
    fn validation() {
        assert!(small(1, 2).validate().is_ok());
        assert!(SradConfig {
            lambda: 2.0,
            ..small(1, 1)
        }
        .validate()
        .is_err());
        assert!(SradConfig {
            tiles: 100,
            ..small(1, 1)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn native_tiled_matches_reference() {
        for tiles in [1usize, 3, 4] {
            let cfg = small(4, tiles);
            let mut ctx = Context::builder(PlatformConfig::phi_31sp())
                .partitions(2)
                .build()
                .unwrap();
            let bufs = build(&mut ctx, &cfg).unwrap();
            let img = fill_inputs(&ctx, &cfg, &bufs, 33).unwrap();
            ctx.run_native().unwrap();
            let got = collect_result(&ctx, &cfg, &bufs).unwrap();
            let want = reference(&cfg, &img);
            assert_close(&got, &want, 5e-3, &format!("srad tiles={tiles}"));
        }
    }

    #[test]
    fn diffusion_reduces_speckle_variance() {
        let cfg = small(20, 2);
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let img = fill_inputs(&ctx, &cfg, &bufs, 2).unwrap();
        ctx.run_native().unwrap();
        let got = collect_result(&ctx, &cfg, &bufs).unwrap();
        let cv = |v: &[f32]| {
            let m = v.iter().sum::<f32>() / v.len() as f32;
            (v.iter().map(|x| (x - m).powi(2)).sum::<f32>() / v.len() as f32).sqrt() / m
        };
        assert!(
            cv(&got) < cv(&img) * 0.8,
            "speckle should shrink: {} -> {}",
            cv(&img),
            cv(&got)
        );
    }

    #[test]
    fn partition_curve_is_u_shaped_in_sim() {
        // Fig. 9(f): performance first improves then degrades over P.
        // Paper-scale geometry (Fig. 9(f) caption): 10000^2 image, 400 tiles.
        let cfg = SradConfig {
            rows: 10000,
            cols: 10000,
            lambda: 0.5,
            iterations: 2,
            tiles: 400,
        };
        let t1 = simulate(&cfg, PlatformConfig::phi_31sp(), 1).unwrap();
        let t8 = simulate(&cfg, PlatformConfig::phi_31sp(), 8).unwrap();
        let t50 = simulate(&cfg, PlatformConfig::phi_31sp(), 50).unwrap();
        assert!(t8 < t1, "mid P beats P=1: {t8} vs {t1}");
        assert!(t8 < t50, "mid P beats large misaligned P: {t8} vs {t50}");
    }
}
