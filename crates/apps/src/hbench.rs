//! hBench — the paper's microbenchmark (`B[i] = A[i] + α`).
//!
//! Three program builders, one per microbenchmark experiment:
//!
//! * [`transfer_program`] — Fig. 5: `hd` H2D blocks and `dh` D2H blocks on
//!   two streams, exposing whether the link serializes the directions;
//! * [`overlap_program`] — Fig. 6: fixed 16 MiB arrays each way, kernel
//!   iterations swept, in four variants (`Data`, `Kernel`, `DataKernel`,
//!   `Streamed`);
//! * [`partition_program`] — Fig. 7: 128 resident blocks, kernels only,
//!   swept over the partition count, plus the non-tiled `ref` variant.

use hstreams::context::Context;
use hstreams::kernel::KernelDesc;
use hstreams::types::Result;
use micsim::PlatformConfig;

use crate::profiles;

/// α used by the kernel (any non-zero constant; visible in native output).
pub const ALPHA: f32 = 2.5;

/// Element-iteration work of `elems` elements iterated `iters` times.
fn kernel_work(elems: usize, iters: usize) -> f64 {
    elems as f64 * iters as f64
}

/// The hBench kernel with a native body: `B[i] = A[i] + α`, `iters` times.
pub fn kernel(label: impl Into<String>, elems: usize, iters: usize) -> KernelDesc {
    KernelDesc::simulated(label, profiles::hbench(), kernel_work(elems, iters)).with_native(
        move |k| {
            let a = k.reads[0];
            let b = &mut k.writes[0];
            let threads = k.threads;
            hstreams::parallel::par_chunks_mut(b, threads, |_, offset, chunk| {
                for (i, out) in chunk.iter_mut().enumerate() {
                    let mut v = a[offset + i];
                    for _ in 0..iters {
                        v += ALPHA;
                    }
                    *out = v;
                }
            });
        },
    )
}

/// Serial reference of the kernel.
pub fn reference(a: &[f32], iters: usize) -> Vec<f32> {
    a.iter().map(|&x| x + ALPHA * iters as f32).collect()
}

/// Fig. 5 program: `hd` host→device blocks on stream 0 and `dh`
/// device→host blocks on stream 1, `block_bytes` each, no ordering between
/// them. On a serial link the makespan is proportional to `hd + dh`; on a
/// full-duplex link it is proportional to `max(hd, dh)`.
pub fn transfer_program(
    cfg: PlatformConfig,
    hd: usize,
    dh: usize,
    block_bytes: u64,
) -> Result<Context> {
    let mut ctx = Context::builder(cfg).partitions(2).build()?;
    let elems = (block_bytes / 4) as usize;
    let s0 = ctx.stream(0)?;
    let s1 = ctx.stream(1)?;
    for i in 0..hd {
        let b = ctx.alloc(format!("hd{i}"), elems);
        ctx.h2d(s0, b)?;
    }
    for i in 0..dh {
        let b = ctx.alloc(format!("dh{i}"), elems);
        ctx.d2h(s1, b)?;
    }
    Ok(ctx)
}

/// Which Fig. 6 variant to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlapVariant {
    /// Transfers only: A host→device and B device→host.
    Data,
    /// Kernel only (data assumed resident).
    Kernel,
    /// Single stream: H2D, kernel, D2H, fully serial.
    DataKernel,
    /// Tiled over `tiles` tasks pipelined across the context's streams.
    Streamed {
        /// Number of tiles the arrays are split into.
        tiles: usize,
    },
}

/// Fig. 6 program: arrays A and B of `elems` f32 each, kernel iterated
/// `iters` times, in the requested variant. `partitions` sizes the context
/// for the `Streamed` variant (the paper uses 4); the single-stream
/// variants always run on the whole device, as in the paper.
pub fn overlap_program(
    cfg: PlatformConfig,
    elems: usize,
    iters: usize,
    partitions: usize,
    variant: OverlapVariant,
) -> Result<Context> {
    let partitions = match variant {
        OverlapVariant::Streamed { .. } => partitions,
        _ => 1,
    };
    let mut ctx = Context::builder(cfg).partitions(partitions).build()?;
    match variant {
        OverlapVariant::Data => {
            let a = ctx.alloc("A", elems);
            let b = ctx.alloc("B", elems);
            let s = ctx.stream(0)?;
            ctx.h2d(s, a)?;
            ctx.d2h(s, b)?;
        }
        OverlapVariant::Kernel => {
            let a = ctx.alloc("A", elems);
            let b = ctx.alloc("B", elems);
            let s = ctx.stream(0)?;
            ctx.kernel(s, kernel("hbench", elems, iters).reading([a]).writing([b]))?;
        }
        OverlapVariant::DataKernel => {
            let a = ctx.alloc("A", elems);
            let b = ctx.alloc("B", elems);
            let s = ctx.stream(0)?;
            ctx.h2d(s, a)?;
            ctx.kernel(s, kernel("hbench", elems, iters).reading([a]).writing([b]))?;
            ctx.d2h(s, b)?;
        }
        OverlapVariant::Streamed { tiles } => {
            let ranges = crate::util::split_ranges(elems, tiles);
            for (t, range) in ranges.into_iter().enumerate() {
                let n = range.len();
                let a = ctx.alloc(format!("A{t}"), n);
                let b = ctx.alloc(format!("B{t}"), n);
                let s = ctx.stream(t % ctx.stream_count())?;
                ctx.h2d(s, a)?;
                ctx.kernel(
                    s,
                    kernel(format!("hbench{t}"), n, iters)
                        .reading([a])
                        .writing([b]),
                )?;
                ctx.d2h(s, b)?;
            }
        }
    }
    Ok(ctx)
}

/// Fig. 7 program: `blocks` resident tiles of `block_elems` elements,
/// kernels only (the paper excludes transfer time here), `iters` iterations
/// each, round-robin over `partitions` streams. `tiled = false` builds the
/// `ref` bar instead: one kernel over the whole array on one partition.
pub fn partition_program(
    cfg: PlatformConfig,
    blocks: usize,
    block_elems: usize,
    iters: usize,
    partitions: usize,
    tiled: bool,
) -> Result<Context> {
    if !tiled {
        let mut ctx = Context::builder(cfg).partitions(1).build()?;
        let total = blocks * block_elems;
        let a = ctx.alloc("A", total);
        let b = ctx.alloc("B", total);
        let s = ctx.stream(0)?;
        ctx.kernel(s, kernel("ref", total, iters).reading([a]).writing([b]))?;
        return Ok(ctx);
    }
    let mut ctx = Context::builder(cfg).partitions(partitions).build()?;
    for t in 0..blocks {
        let a = ctx.alloc(format!("A{t}"), block_elems);
        let b = ctx.alloc(format!("B{t}"), block_elems);
        let s = ctx.stream(t % ctx.stream_count())?;
        ctx.kernel(
            s,
            kernel(format!("k{t}"), block_elems, iters)
                .reading([a])
                .writing([b]),
        )?;
    }
    Ok(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::assert_close;
    use micsim::SimDuration;

    const MB: u64 = 1 << 20;

    #[test]
    fn fig5_serial_link_sums_directions() {
        // ID case: hd + dh = 16 constant => constant time ~2.5 ms.
        let t = |hd, dh| {
            transfer_program(PlatformConfig::phi_31sp(), hd, dh, MB)
                .unwrap()
                .run_sim()
                .unwrap()
                .makespan()
                .as_millis_f64()
        };
        let id_times: Vec<f64> = (0..=16).map(|hd| t(hd, 16 - hd)).collect();
        let first = id_times[0];
        for v in &id_times {
            assert!(
                (v - first).abs() / first < 0.02,
                "ID should be flat: {id_times:?}"
            );
        }
        assert!((first - 2.5).abs() < 0.4, "ID level ≈ 2.5 ms, got {first}");
        // CC case: 32 blocks ≈ double.
        let cc = t(16, 16);
        assert!((cc / first - 2.0).abs() < 0.05);
    }

    #[test]
    fn fig5_full_duplex_takes_max() {
        let t = |hd, dh| {
            transfer_program(PlatformConfig::phi_31sp_full_duplex(), hd, dh, MB)
                .unwrap()
                .run_sim()
                .unwrap()
                .makespan()
                .as_millis_f64()
        };
        let balanced = t(8, 8);
        let one_way = t(16, 0);
        assert!(
            (balanced - one_way / 2.0).abs() / balanced < 0.05,
            "full duplex: 8+8 ({balanced}) ≈ half of 16+0 ({one_way})"
        );
    }

    #[test]
    fn fig6_streamed_between_ideal_and_serial() {
        let elems = 4 << 20;
        let iters = 40;
        let run = |variant| {
            overlap_program(PlatformConfig::phi_31sp(), elems, iters, 4, variant)
                .unwrap()
                .run_sim()
                .unwrap()
                .makespan()
        };
        let data = run(OverlapVariant::Data);
        let kern = run(OverlapVariant::Kernel);
        let serial = run(OverlapVariant::DataKernel);
        let streamed = run(OverlapVariant::Streamed { tiles: 16 });
        let ideal = data.max(kern);
        assert!(
            streamed > ideal,
            "full overlap is unattainable: streamed {streamed} vs ideal {ideal}"
        );
        assert!(
            streamed < serial,
            "streaming must beat the serial flow: {streamed} vs {serial}"
        );
    }

    #[test]
    fn fig7_u_shape_and_ref_floor() {
        let run = |p| {
            partition_program(PlatformConfig::phi_31sp(), 128, 32 << 10, 100, p, true)
                .unwrap()
                .run_sim()
                .unwrap()
                .makespan()
        };
        let t1 = run(1);
        let t8 = run(8);
        let t128 = run(128);
        let reference = partition_program(PlatformConfig::phi_31sp(), 128, 32 << 10, 100, 1, false)
            .unwrap()
            .run_sim()
            .unwrap()
            .makespan();
        assert!(t1 > t8, "left edge of the U: {t1} > {t8}");
        assert!(t128 > t8, "right edge of the U: {t128} > {t8}");
        assert!(
            reference < t8,
            "non-tiled ref must beat every tiled config: {reference} vs {t8}"
        );
        assert!(reference > SimDuration::ZERO);
    }

    #[test]
    fn native_kernel_matches_reference() {
        let elems = 1 << 12;
        let iters = 7;
        let ctx = overlap_program(
            PlatformConfig::phi_31sp(),
            elems,
            iters,
            2,
            OverlapVariant::Streamed { tiles: 4 },
        )
        .unwrap();
        // Fill the tile inputs, run natively, compare with the reference.
        let mut expected_all = Vec::new();
        let mut got_all = Vec::new();
        for t in 0..4 {
            let a = hstreams::BufId(t * 2);
            let data = crate::util::random_vec(t as u64, ctx.buffer(a).unwrap().len, -1.0, 1.0);
            ctx.write_host(a, &data).unwrap();
            expected_all.extend(reference(&data, iters));
        }
        ctx.run_native().unwrap();
        for t in 0..4 {
            let b = hstreams::BufId(t * 2 + 1);
            got_all.extend(ctx.read_host(b).unwrap());
        }
        assert_close(&got_all, &expected_all, 1e-4, "hbench native");
    }
}
