//! Tenant workload generators for the serving layer.
//!
//! A [`Workload`] is a self-contained recipe a multi-tenant service can
//! replay: *record me onto a private scratch context of this geometry*.
//! The service captures the recorded program plus the scratch context's
//! buffers and relocates them into its shared partition space — so a
//! workload knows nothing about serving, leases, or other tenants.
//!
//! Two families ship here:
//!
//! * [`catalog`] wraps the six [`Tunable`](crate::tunable) app builders
//!   (hbench, MM, CF, NN, kmeans, partition-micro) at small, fast sizes —
//!   real pipelines with transfers, events and barriers;
//! * [`synthetic`] builds deterministic mix-kernel pipelines of any lane
//!   count from a seed — cheap, thread-count-invariant tenants that let a
//!   benchmark scale to dozens of concurrent clients and inject faults at
//!   known sites.

use hstreams::context::Context;
use hstreams::testutil::{mix_kernel, splitmix64};
use hstreams::types::Result;

use crate::tunable::{
    Tunable, TunableCf, TunableHbench, TunableKmeans, TunableMm, TunableNn, TunablePartitionMicro,
};

/// Recording closure of a [`Workload`]: replays the app onto a scratch
/// context. Stateful (tunables cache their tile buffers), hence `FnMut`.
pub type RecordFn = Box<dyn FnMut(&mut Context) -> Result<()> + Send>;

/// A recordable tenant workload. See the [module docs](self).
pub struct Workload {
    /// Display name, e.g. `"mm"` or `"syn3"`.
    pub name: String,
    /// Virtual partitions the scratch context should plan.
    pub partitions: usize,
    /// Streams per virtual partition.
    pub streams_per_partition: usize,
    /// Record the workload onto a scratch context of that geometry.
    pub record: RecordFn,
}

/// Wrap one [`Tunable`] at task count `t` as a workload over `partitions`
/// virtual partitions (one stream each).
#[must_use]
pub fn from_tunable(mut app: Box<dyn Tunable + Send>, t: usize, partitions: usize) -> Workload {
    let name = app.name().to_string();
    Workload {
        name,
        partitions,
        streams_per_partition: 1,
        record: Box::new(move |ctx| app.record(ctx, t)),
    }
}

/// The six app builders at small serving sizes: four overlappable
/// pipelines (hbench, MM, CF, NN) and two barrier-separated ones (kmeans,
/// partition-micro) — the latter exercise the service's barrier-to-event
/// lowering. `seed` varies the input fills.
#[must_use]
pub fn catalog(seed: u64) -> Vec<Workload> {
    vec![
        from_tunable(Box::new(TunableHbench::new(1 << 10, 2, Some(seed))), 4, 2),
        from_tunable(Box::new(TunableMm::new(24, Some(seed ^ 1))), 4, 2),
        from_tunable(Box::new(TunableCf::new(24, Some(seed ^ 2))), 4, 2),
        from_tunable(Box::new(TunableNn::new(256, Some(seed ^ 3))), 4, 2),
        from_tunable(
            Box::new(TunableKmeans::new(128, 4, 2, Some(seed ^ 4))),
            4,
            2,
        ),
        from_tunable(Box::new(TunablePartitionMicro::new(1 << 10, 2)), 4, 2),
    ]
}

/// A deterministic synthetic tenant: `lanes` parallel streams (one per
/// virtual partition), each `h2d → kernel → kernel → d2h` over its own
/// pair of buffers, with a seed-chosen cross-lane event edge. The kernel
/// bodies are [`mix_kernel`]s — sequential per output element, so results
/// are independent of partition thread counts and bit-comparable between
/// solo and multi-tenant runs.
#[must_use]
pub fn synthetic(name: impl Into<String>, seed: u64, lanes: usize) -> Workload {
    let name = name.into();
    let lanes = lanes.max(1);
    let label = name.clone();
    Workload {
        name,
        partitions: lanes,
        streams_per_partition: 1,
        record: Box::new(move |ctx| {
            let elems = 64 + (splitmix64(seed) % 4) as usize * 32;
            let mut outs = Vec::with_capacity(lanes);
            for lane in 0..lanes {
                let a = ctx.alloc(format!("{label}.a{lane}"), elems);
                let b = ctx.alloc(format!("{label}.b{lane}"), elems);
                let fill: Vec<f32> = (0..elems)
                    .map(|i| {
                        (splitmix64(seed ^ ((lane * elems + i) as u64)) % 1024) as f32 / 1024.0
                    })
                    .collect();
                ctx.write_host(a, &fill)?;
                let s = ctx.stream(lane % ctx.stream_count())?;
                ctx.h2d(s, a)?;
                ctx.kernel(s, mix_kernel(format!("{label}.k{lane}a"), [a], [b], 1e4))?;
                ctx.kernel(s, mix_kernel(format!("{label}.k{lane}b"), [a], [b], 1e4))?;
                ctx.d2h(s, b)?;
                outs.push((s, b));
            }
            // One seed-chosen producer/consumer edge between two lanes.
            if lanes >= 2 {
                let from = (splitmix64(seed ^ 0xabcd) % lanes as u64) as usize;
                let to = (from + 1) % lanes;
                let e = ctx.record_event(outs[from].0)?;
                ctx.wait_event(outs[to].0, e)?;
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micsim::PlatformConfig;

    fn scratch(w: &Workload) -> Context {
        Context::builder(PlatformConfig::phi_31sp())
            .partitions(w.partitions)
            .streams_per_partition(w.streams_per_partition)
            .build()
            .unwrap()
    }

    #[test]
    fn catalog_records_clean_programs() {
        for mut w in catalog(7) {
            let mut ctx = scratch(&w);
            (w.record)(&mut ctx).unwrap();
            ctx.program().validate().unwrap();
            assert!(
                ctx.analyze().report.is_clean(),
                "{} must record clean",
                w.name
            );
            assert!(ctx.program().action_count() > 0, "{} is empty", w.name);
        }
    }

    #[test]
    fn synthetic_is_deterministic_and_rerecordable() {
        let mut w = synthetic("syn", 42, 3);
        let mut ctx = scratch(&w);
        (w.record)(&mut ctx).unwrap();
        let first = ctx.program().dump();
        let first_host = ctx.read_host(hstreams::types::BufId(0)).unwrap();

        let mut w2 = synthetic("syn", 42, 3);
        let mut ctx2 = scratch(&w2);
        (w2.record)(&mut ctx2).unwrap();
        assert_eq!(ctx2.program().dump(), first);
        assert_eq!(
            ctx2.read_host(hstreams::types::BufId(0)).unwrap(),
            first_host
        );
        ctx.analyze().report.is_clean();
    }
}
