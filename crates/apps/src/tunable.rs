//! `(T, P)`-tunable program builders — the autotuner's view of the apps.
//!
//! A [`Tunable`] wraps one application at one problem size and knows how to
//! record its streamed program for any task count `T` against a context
//! whose partition count `P` was already set (via
//! [`Context::replan`](hstreams::context::Context::replan)). Buffers for a
//! given `T` are allocated — and, when a fill seed is supplied, filled —
//! exactly once and then reused across trials, so a tuning sweep pays the
//! allocation and input generation cost per *tiling*, not per *trial*.
//!
//! The split of responsibilities with `stream-tune` is deliberate:
//! everything an application intrinsically knows (its transfer volume,
//! total kernel work, calibrated per-thread rate — [`PipelineCosts`]) lives
//! here next to the builders and [`profiles`]; the tuner
//! combines those costs with a platform description to seed its model-first
//! search order.

use std::collections::HashMap;

use hstreams::context::Context;
use hstreams::types::{BufId, Result};

use crate::{cholesky, hbench, kmeans, mm, nn, profiles, util};

/// Application-intrinsic quantities of a streamed pipeline, in the units of
/// the tuner's analytical model: bytes each way, transfers per tile, total
/// kernel work and the calibrated per-thread-equivalent rate it runs at.
/// `None` from [`Tunable::pipeline_costs`] means the flow is not described
/// by a linear pipeline (e.g. barrier-separated Kmeans) and model seeding
/// falls back to the pruned order.
#[derive(Clone, Copy, Debug)]
pub struct PipelineCosts {
    /// Host→device bytes of one full run.
    pub bytes_h2d: f64,
    /// Device→host bytes of one full run.
    pub bytes_d2h: f64,
    /// Link transactions per tile (latency term).
    pub transfers_per_tile: f64,
    /// Total kernel work, in the unit of `thread_rate`.
    pub kernel_work: f64,
    /// Work units per second per device thread-equivalent (from
    /// [`profiles`]).
    pub thread_rate: f64,
}

/// One application at one problem size, parameterized by the paper's task
/// granularity `T`. The resource granularity `P` comes from the context the
/// trial records into.
pub trait Tunable {
    /// Short identifier, e.g. `"mm"` — the measurement-cache key's app
    /// component.
    fn name(&self) -> &'static str;

    /// Problem-size description, e.g. `"n=96"` — the cache key's problem
    /// component.
    fn problem(&self) -> String;

    /// Whether transfers and kernels can overlap in this flow (false for
    /// the barrier-separated apps, the paper's Fig. 4(d) class).
    fn overlappable(&self) -> bool;

    /// Whether this app can be tiled into exactly `t` tasks (e.g. MM and CF
    /// need `t` to be a perfect square whose root divides `n`).
    fn feasible(&self, t: usize) -> bool;

    /// Record the `t`-task program into `ctx` (already planned at the
    /// trial's `P`). Buffers are cached per `t` across calls.
    fn record(&mut self, ctx: &mut Context, t: usize) -> Result<()>;

    /// Intrinsic pipeline costs for model-seeded search, if the flow fits
    /// the linear-pipeline model.
    fn pipeline_costs(&self) -> Option<PipelineCosts>;
}

/// Exact integer square root, if `t` is a perfect square.
fn perfect_sqrt(t: usize) -> Option<usize> {
    let r = (t as f64).sqrt().round() as usize;
    (r * r == t).then_some(r)
}

// ----- hBench ---------------------------------------------------------------

/// The paper's microbenchmark pipeline (`B[i] = A[i] + α`, Fig. 6
/// `Streamed` variant): `elems` elements split into `T` tiles, each tile
/// H2D → kernel → D2H, round-robin over the context's streams.
pub struct TunableHbench {
    elems: usize,
    iters: usize,
    /// Input data, generated once; `None` skips filling (sim-only sweeps).
    data: Option<Vec<f32>>,
    /// Per-`T` tile buffers `(A, B)`, allocated on first sight of that `T`.
    tiles: HashMap<usize, Vec<(BufId, BufId)>>,
}

impl TunableHbench {
    /// `fill_seed: Some(_)` generates and writes deterministic inputs (one
    /// vector shared by every tiling) — required for native trials, wasted
    /// work for sim-only sweeps.
    pub fn new(elems: usize, iters: usize, fill_seed: Option<u64>) -> TunableHbench {
        TunableHbench {
            elems,
            iters,
            data: fill_seed.map(|s| util::random_vec(s, elems, -1.0, 1.0)),
            tiles: HashMap::new(),
        }
    }
}

impl Tunable for TunableHbench {
    fn name(&self) -> &'static str {
        "hbench"
    }

    fn problem(&self) -> String {
        format!("elems={},iters={}", self.elems, self.iters)
    }

    fn overlappable(&self) -> bool {
        true
    }

    fn feasible(&self, t: usize) -> bool {
        t >= 1 && t <= self.elems
    }

    fn record(&mut self, ctx: &mut Context, t: usize) -> Result<()> {
        let ranges = util::split_ranges(self.elems, t);
        if !self.tiles.contains_key(&t) {
            let mut bufs = Vec::with_capacity(t);
            for (i, range) in ranges.iter().enumerate() {
                let a = ctx.alloc(format!("A{t}_{i}"), range.len());
                let b = ctx.alloc(format!("B{t}_{i}"), range.len());
                if let Some(data) = &self.data {
                    ctx.write_host(a, &data[range.clone()])?;
                }
                bufs.push((a, b));
            }
            self.tiles.insert(t, bufs);
        }
        let bufs = &self.tiles[&t];
        let streams = ctx.stream_count();
        for (i, (&(a, b), range)) in bufs.iter().zip(&ranges).enumerate() {
            let s = ctx.stream(i % streams)?;
            ctx.h2d(s, a)?;
            ctx.kernel(
                s,
                hbench::kernel(format!("hbench{i}"), range.len(), self.iters)
                    .reading([a])
                    .writing([b]),
            )?;
            ctx.d2h(s, b)?;
        }
        Ok(())
    }

    fn pipeline_costs(&self) -> Option<PipelineCosts> {
        Some(PipelineCosts {
            bytes_h2d: (self.elems * 4) as f64,
            bytes_d2h: (self.elems * 4) as f64,
            transfers_per_tile: 2.0,
            kernel_work: self.elems as f64 * self.iters as f64,
            thread_rate: profiles::hbench().thread_rate,
        })
    }
}

// ----- MM -------------------------------------------------------------------

/// Streamed matrix multiplication: `T = tiles_per_dim²` tasks, so only
/// perfect squares whose root divides `n` are feasible.
pub struct TunableMm {
    n: usize,
    fill_seed: Option<u64>,
    built: HashMap<usize, mm::MmBuffers>,
}

impl TunableMm {
    /// See [`TunableHbench::new`] for the `fill_seed` semantics.
    pub fn new(n: usize, fill_seed: Option<u64>) -> TunableMm {
        TunableMm {
            n,
            fill_seed,
            built: HashMap::new(),
        }
    }
}

impl Tunable for TunableMm {
    fn name(&self) -> &'static str {
        "mm"
    }

    fn problem(&self) -> String {
        format!("n={}", self.n)
    }

    fn overlappable(&self) -> bool {
        true
    }

    fn feasible(&self, t: usize) -> bool {
        perfect_sqrt(t).is_some_and(|tpd| tpd >= 1 && self.n.is_multiple_of(tpd))
    }

    fn record(&mut self, ctx: &mut Context, t: usize) -> Result<()> {
        let tpd = perfect_sqrt(t).ok_or_else(|| {
            hstreams::Error::Config(format!("MM task count {t} is not a perfect square"))
        })?;
        let cfg = mm::MmConfig {
            n: self.n,
            tiles_per_dim: tpd,
        };
        if let Some(bufs) = self.built.get(&tpd) {
            return mm::record(ctx, &cfg, bufs);
        }
        let bufs = mm::build(ctx, &cfg)?;
        if let Some(seed) = self.fill_seed {
            mm::fill_inputs(ctx, &cfg, &bufs, seed)?;
        }
        self.built.insert(tpd, bufs);
        Ok(())
    }

    fn pipeline_costs(&self) -> Option<PipelineCosts> {
        let n2 = (self.n * self.n) as f64;
        Some(PipelineCosts {
            // A and B panels up once, C tiles back.
            bytes_h2d: 2.0 * n2 * 4.0,
            bytes_d2h: n2 * 4.0,
            // One C download per tile plus the amortized panel uploads.
            transfers_per_tile: 1.5,
            kernel_work: 2.0 * (self.n as f64).powi(3),
            thread_rate: profiles::mm_gemm().thread_rate,
        })
    }
}

// ----- CF -------------------------------------------------------------------

/// Streamed Cholesky factorization: like MM, `T = tiles_per_dim²` with the
/// root dividing `n` (`T = 1` is the monolithic non-streamed version).
pub struct TunableCf {
    n: usize,
    fill_seed: Option<u64>,
    built: HashMap<usize, cholesky::CfBuffers>,
}

impl TunableCf {
    /// See [`TunableHbench::new`] for the `fill_seed` semantics.
    pub fn new(n: usize, fill_seed: Option<u64>) -> TunableCf {
        TunableCf {
            n,
            fill_seed,
            built: HashMap::new(),
        }
    }
}

impl Tunable for TunableCf {
    fn name(&self) -> &'static str {
        "cf"
    }

    fn problem(&self) -> String {
        format!("n={}", self.n)
    }

    fn overlappable(&self) -> bool {
        true
    }

    fn feasible(&self, t: usize) -> bool {
        perfect_sqrt(t).is_some_and(|tpd| tpd >= 1 && self.n.is_multiple_of(tpd))
    }

    fn record(&mut self, ctx: &mut Context, t: usize) -> Result<()> {
        let tpd = perfect_sqrt(t).ok_or_else(|| {
            hstreams::Error::Config(format!("CF task count {t} is not a perfect square"))
        })?;
        let cfg = cholesky::CfConfig {
            n: self.n,
            tiles_per_dim: tpd,
        };
        if let Some(bufs) = self.built.get(&tpd) {
            return cholesky::record(ctx, &cfg, bufs);
        }
        let bufs = cholesky::build(ctx, &cfg)?;
        if let Some(seed) = self.fill_seed {
            cholesky::fill_inputs(ctx, &cfg, &bufs, seed)?;
        }
        self.built.insert(tpd, bufs);
        Ok(())
    }

    fn pipeline_costs(&self) -> Option<PipelineCosts> {
        // CF is a dependent task graph (per-step POTRF → TRSM → update
        // chains with host round trips), not a linear tile pipeline: the
        // model's independent-tile assumption ranks its lookahead-hungry
        // optimum near the back. Decline, so model seeding falls back to
        // the pruned order.
        None
    }
}

// ----- NN -------------------------------------------------------------------

/// Streamed nearest-neighbor distance pass: `T` record tiles, each H2D →
/// distance kernel → D2H (transfer-bound, Fig. 9(e)).
pub struct TunableNn {
    records: usize,
    k: usize,
    target: (f32, f32),
    fill_seed: Option<u64>,
    built: HashMap<usize, nn::NnBuffers>,
}

impl TunableNn {
    /// See [`TunableHbench::new`] for the `fill_seed` semantics.
    pub fn new(records: usize, fill_seed: Option<u64>) -> TunableNn {
        TunableNn {
            records,
            k: 10,
            target: (40.0, 120.0),
            fill_seed,
            built: HashMap::new(),
        }
    }

    fn cfg(&self, tiles: usize) -> nn::NnConfig {
        nn::NnConfig {
            records: self.records,
            tiles,
            k: self.k,
            target: self.target,
        }
    }
}

impl Tunable for TunableNn {
    fn name(&self) -> &'static str {
        "nn"
    }

    fn problem(&self) -> String {
        format!("records={}", self.records)
    }

    fn overlappable(&self) -> bool {
        true
    }

    fn feasible(&self, t: usize) -> bool {
        t >= 1 && t <= self.records
    }

    fn record(&mut self, ctx: &mut Context, t: usize) -> Result<()> {
        let cfg = self.cfg(t);
        if let Some(bufs) = self.built.get(&t) {
            return nn::record(ctx, &cfg, bufs);
        }
        let bufs = nn::build(ctx, &cfg)?;
        if let Some(seed) = self.fill_seed {
            nn::fill_inputs(ctx, &cfg, &bufs, seed)?;
        }
        self.built.insert(t, bufs);
        Ok(())
    }

    fn pipeline_costs(&self) -> Option<PipelineCosts> {
        Some(PipelineCosts {
            bytes_h2d: (self.records * 2 * 4) as f64,
            bytes_d2h: (self.records * 4) as f64,
            transfers_per_tile: 2.0,
            kernel_work: self.records as f64,
            thread_rate: profiles::nn_distance().thread_rate,
        })
    }
}

// ----- Kmeans ---------------------------------------------------------------

/// Streamed Kmeans: `T` point tiles per Lloyd iteration, barrier-separated
/// phases — the paper's non-overlappable class, so no pipeline costs; its
/// tuning payoff is the Sec. V-B1 allocation-overhead collapse at high `P`.
pub struct TunableKmeans {
    points: usize,
    dims: usize,
    k: usize,
    iterations: usize,
    fill_seed: Option<u64>,
    built: HashMap<usize, kmeans::KmeansBuffers>,
}

impl TunableKmeans {
    /// See [`TunableHbench::new`] for the `fill_seed` semantics.
    pub fn new(points: usize, dims: usize, iterations: usize, fill_seed: Option<u64>) -> Self {
        TunableKmeans {
            points,
            dims,
            k: 8,
            iterations,
            fill_seed,
            built: HashMap::new(),
        }
    }

    fn cfg(&self, tiles: usize) -> kmeans::KmeansConfig {
        kmeans::KmeansConfig {
            points: self.points,
            dims: self.dims,
            k: self.k,
            iterations: self.iterations,
            tiles,
            alloc_micros: 5,
        }
    }
}

impl Tunable for TunableKmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn problem(&self) -> String {
        format!(
            "points={},dims={},iters={}",
            self.points, self.dims, self.iterations
        )
    }

    fn overlappable(&self) -> bool {
        false
    }

    fn feasible(&self, t: usize) -> bool {
        t >= 1 && t <= self.points
    }

    fn record(&mut self, ctx: &mut Context, t: usize) -> Result<()> {
        let cfg = self.cfg(t);
        if let Some(bufs) = self.built.get(&t) {
            return kmeans::record(ctx, &cfg, bufs);
        }
        let bufs = kmeans::build(ctx, &cfg)?;
        if let Some(seed) = self.fill_seed {
            kmeans::fill_inputs(ctx, &cfg, &bufs, seed)?;
        }
        self.built.insert(t, bufs);
        Ok(())
    }

    fn pipeline_costs(&self) -> Option<PipelineCosts> {
        None
    }
}

// ----- partition microbenchmark ---------------------------------------------

/// The Fig. 7 kernels-only microbenchmark as a tunable: `elems` elements
/// split into `T` resident blocks, one kernel each, **no transfers** — so
/// nothing can overlap and the cost landscape over `P` exposes the paper's
/// U-shape, with `(P, T) = (1, 1)` being exactly the non-tiled `ref`
/// configuration.
pub struct TunablePartitionMicro {
    elems: usize,
    iters: usize,
    tiles: HashMap<usize, Vec<(BufId, BufId)>>,
}

impl TunablePartitionMicro {
    /// Kernels-only, nothing to fill: inputs are never transferred.
    pub fn new(elems: usize, iters: usize) -> TunablePartitionMicro {
        TunablePartitionMicro {
            elems,
            iters,
            tiles: HashMap::new(),
        }
    }
}

impl Tunable for TunablePartitionMicro {
    fn name(&self) -> &'static str {
        "partition_micro"
    }

    fn problem(&self) -> String {
        format!("elems={},iters={}", self.elems, self.iters)
    }

    fn overlappable(&self) -> bool {
        false
    }

    fn feasible(&self, t: usize) -> bool {
        t >= 1 && t <= self.elems
    }

    fn record(&mut self, ctx: &mut Context, t: usize) -> Result<()> {
        let ranges = util::split_ranges(self.elems, t);
        self.tiles.entry(t).or_insert_with(|| {
            let mut bufs = Vec::with_capacity(t);
            for (i, range) in ranges.iter().enumerate() {
                let a = ctx.alloc(format!("A{t}_{i}"), range.len());
                let b = ctx.alloc(format!("B{t}_{i}"), range.len());
                bufs.push((a, b));
            }
            bufs
        });
        let bufs = &self.tiles[&t];
        let streams = ctx.stream_count();
        for (i, (&(a, b), range)) in bufs.iter().zip(&ranges).enumerate() {
            let s = ctx.stream(i % streams)?;
            ctx.kernel(
                s,
                hbench::kernel(format!("k{i}"), range.len(), self.iters)
                    .reading([a])
                    .writing([b]),
            )?;
        }
        Ok(())
    }

    fn pipeline_costs(&self) -> Option<PipelineCosts> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micsim::PlatformConfig;

    fn ctx(p: usize) -> Context {
        Context::builder(PlatformConfig::phi_31sp())
            .partitions(p)
            .build()
            .unwrap()
    }

    #[test]
    fn square_feasibility_for_mm_and_cf() {
        let m = TunableMm::new(96, None);
        assert!(m.feasible(1) && m.feasible(4) && m.feasible(16) && m.feasible(64));
        assert!(!m.feasible(2), "2 is not a perfect square");
        assert!(!m.feasible(25), "5 does not divide 96");
        let c = TunableCf::new(96, None);
        assert!(c.feasible(9) && !c.feasible(8));
    }

    #[test]
    fn buffers_allocated_once_per_tiling() {
        let mut app = TunableHbench::new(1 << 10, 4, None);
        let mut c = ctx(2);
        app.record(&mut c, 4).unwrap();
        let after_first = c.buffer_count();
        assert_eq!(after_first, 8, "4 tiles x (A, B)");
        // Same T again: re-record without allocating.
        c.replan(4).unwrap();
        app.record(&mut c, 4).unwrap();
        assert_eq!(c.buffer_count(), after_first);
        // New T: allocates its own tile set.
        c.replan(2).unwrap();
        app.record(&mut c, 2).unwrap();
        assert_eq!(c.buffer_count(), after_first + 4);
    }

    #[test]
    fn recorded_trial_runs_on_sim_and_native() {
        let mut app = TunableHbench::new(1 << 10, 4, Some(7));
        let mut c = ctx(2);
        app.record(&mut c, 4).unwrap();
        assert!(c.run_sim().unwrap().makespan().nanos() > 0);
        c.run_native().unwrap();
        // Output of the last tile is input + alpha*iters.
        let (_, b) = app.tiles[&4][3];
        let out = c.read_host(b).unwrap();
        let a_in = &app.data.as_ref().unwrap()[3 * 256..4 * 256];
        for (o, i) in out.iter().zip(a_in) {
            assert!((o - (i + hbench::ALPHA * 4.0)).abs() < 1e-4);
        }
    }

    #[test]
    fn mm_tunable_reuses_buffers_across_replans() {
        let mut app = TunableMm::new(32, Some(3));
        let mut c = ctx(1);
        app.record(&mut c, 4).unwrap();
        let n_bufs = c.buffer_count();
        let sim_p1 = c.run_sim().unwrap().makespan();
        c.replan(4).unwrap();
        app.record(&mut c, 4).unwrap();
        assert_eq!(c.buffer_count(), n_bufs, "replan must not reallocate");
        let sim_p4 = c.run_sim().unwrap().makespan();
        assert_ne!(sim_p1, sim_p4, "geometry change must reprice the program");
    }

    #[test]
    fn kmeans_not_overlappable_and_modelless() {
        let app = TunableKmeans::new(1024, 8, 2, None);
        assert!(!app.overlappable());
        assert!(app.pipeline_costs().is_none());
        assert!(TunableHbench::new(64, 1, None).pipeline_costs().is_some());
    }
}
