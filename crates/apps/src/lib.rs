//! # mic-apps — the paper's seven workloads
//!
//! hBench plus the six real-world applications from the paper, each as a
//! tiled, streamed `hstreams` program with:
//!
//! * a **builder** that records the app's Fig. 4 flow (overlappable or
//!   stage-synchronized) onto a [`hstreams::Context`] for any `(P, T)`;
//! * calibrated **cost profiles** for the simulator executor;
//! * real **native kernels** and a serial **reference** implementation, so
//!   the streamed execution is validated end to end.
//!
//! | module | app | flow (Fig. 4) |
//! |---|---|---|
//! | [`hbench`] | microbenchmark `B[i] = A[i] + α` | either |
//! | [`mm`] | Matrix Multiplication | overlappable |
//! | [`cholesky`] | Cholesky Factorization | overlappable, multi-kernel |
//! | [`kmeans`] | Kmeans clustering | non-overlappable, alloc-heavy |
//! | [`hotspot`] | thermal stencil | non-overlappable |
//! | [`nn`] | nearest neighbours | overlappable, transfer-bound |
//! | [`srad`] | speckle-reducing diffusion | non-overlappable, multi-kernel |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cholesky;
pub mod hbench;
pub mod hotspot;
pub mod kmeans;
pub mod mm;
pub mod nn;
pub mod profiles;
pub mod srad;
pub mod tunable;
pub mod util;
pub mod workload;
