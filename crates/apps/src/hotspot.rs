//! Hotspot — non-overlappable 2-D transient thermal stencil, from Rodinia.
//!
//! Estimates processor temperature from a power map: every iteration each
//! cell relaxes toward its four neighbours, its power input and the
//! ambient. The grid is tiled into horizontal row blocks (one buffer per
//! block, double-buffered); every iteration ends in a device-wide barrier
//! because each tile's next step needs its neighbours' current step —
//! the Fig. 4(c) flow. With no transfer/kernel overlap possible, the paper
//! finds streaming gives Hotspot **no improvement** (Fig. 8(d)); what moves
//! the needle is partition *shape*: 6-7-thread partitions spanning ≤ 2
//! cores use the private caches best (the P≈33-37 dip of Fig. 9(d)),
//! carried by [`profiles::hotspot_stencil`]'s `CacheProfile`.

use hstreams::context::Context;
use hstreams::kernel::KernelDesc;
use hstreams::types::{BufId, Result};
use micsim::PlatformConfig;

use crate::profiles;
use crate::util;

/// Stencil coefficients (shared by kernels and the serial reference).
pub const K_VERT: f32 = 0.10;
/// Horizontal coupling.
pub const K_HORIZ: f32 = 0.10;
/// Power injection coefficient.
pub const K_POWER: f32 = 0.05;
/// Coupling toward the ambient temperature.
pub const K_AMB: f32 = 0.02;
/// Ambient temperature.
pub const AMBIENT: f32 = 80.0;

/// Problem description.
#[derive(Clone, Copy, Debug)]
pub struct HotspotConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Simulation iterations (the paper uses 50).
    pub iterations: usize,
    /// Number of row-block tiles.
    pub tiles: usize,
}

impl HotspotConfig {
    /// Validate.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.rows == 0 || self.cols == 0 || self.tiles == 0 {
            return Err("rows, cols and tiles must be positive".into());
        }
        if self.tiles > self.rows {
            return Err(format!("tiles {} exceeds rows {}", self.tiles, self.rows));
        }
        Ok(())
    }
}

/// Buffer handles of a built Hotspot program.
pub struct HotspotBuffers {
    /// Ping temperature blocks.
    pub temp_a: Vec<BufId>,
    /// Pong temperature blocks.
    pub temp_b: Vec<BufId>,
    /// Power blocks.
    pub power: Vec<BufId>,
    /// Rows in each block.
    pub tile_rows: Vec<usize>,
    /// Which buffer set holds the final temperatures (`true` = `temp_a`).
    pub result_in_a: bool,
}

#[derive(Clone, Copy)]
struct StencilShape {
    cols: usize,
    rows: usize,
    has_above: bool,
    has_below: bool,
}

/// One tile's stencil step. Read order: `[own, above?, below?, power]`.
fn stencil_kernel(label: String, shape: StencilShape) -> KernelDesc {
    let work = (shape.rows * shape.cols) as f64;
    KernelDesc::simulated(label, profiles::hotspot_stencil(), work).with_native(move |kc| {
        let own = kc.reads[0];
        let mut idx = 1;
        let above = shape.has_above.then(|| {
            idx += 1;
            kc.reads[idx - 1]
        });
        let below = shape.has_below.then(|| {
            idx += 1;
            kc.reads[idx - 1]
        });
        let power = kc.reads[idx];
        let (rows, cols) = (shape.rows, shape.cols);
        let threads = kc.threads;
        let out = &mut kc.writes[0];
        hstreams::parallel::par_chunks_mut(out, threads.min(rows), |_, offset, chunk| {
            debug_assert_eq!(offset % cols, 0);
            for (ri, row_out) in chunk.chunks_mut(cols).enumerate() {
                let r = offset / cols + ri;
                for c in 0..cols {
                    let center = own[r * cols + c];
                    let north = if r > 0 {
                        own[(r - 1) * cols + c]
                    } else if let Some(ab) = above {
                        ab[(ab.len() / cols - 1) * cols + c]
                    } else {
                        center
                    };
                    let south = if r + 1 < rows {
                        own[(r + 1) * cols + c]
                    } else if let Some(be) = below {
                        be[c]
                    } else {
                        center
                    };
                    let west = if c > 0 { own[r * cols + c - 1] } else { center };
                    let east = if c + 1 < cols {
                        own[r * cols + c + 1]
                    } else {
                        center
                    };
                    row_out[c] = center
                        + K_VERT * (north + south - 2.0 * center)
                        + K_HORIZ * (east + west - 2.0 * center)
                        + K_POWER * power[r * cols + c]
                        + K_AMB * (AMBIENT - center);
                }
            }
        });
    })
}

/// Build the Hotspot program (`tiles == 1`, one partition = "w/o").
#[allow(clippy::needless_range_loop)]
pub fn build(ctx: &mut Context, cfg: &HotspotConfig) -> Result<HotspotBuffers> {
    cfg.validate().map_err(hstreams::Error::Config)?;
    let streams = ctx.stream_count();
    let ranges = util::split_ranges(cfg.rows, cfg.tiles);
    let tile_rows: Vec<usize> = ranges
        .iter()
        .map(std::iter::ExactSizeIterator::len)
        .collect();
    let nt = tile_rows.len();
    let cols = cfg.cols;

    let temp_a: Vec<BufId> = (0..nt)
        .map(|t| ctx.alloc(format!("tempA{t}"), tile_rows[t] * cols))
        .collect();
    let temp_b: Vec<BufId> = (0..nt)
        .map(|t| ctx.alloc(format!("tempB{t}"), tile_rows[t] * cols))
        .collect();
    let power: Vec<BufId> = (0..nt)
        .map(|t| ctx.alloc(format!("power{t}"), tile_rows[t] * cols))
        .collect();

    // Upload temperatures and power, then synchronize (stage boundary).
    for t in 0..nt {
        let s = ctx.stream(t % streams)?;
        ctx.h2d(s, temp_a[t])?;
        ctx.h2d(s, power[t])?;
    }
    ctx.barrier();

    let mut src = &temp_a;
    let mut dst = &temp_b;
    for iter in 0..cfg.iterations {
        for t in 0..nt {
            let s = ctx.stream(t % streams)?;
            let mut reads = vec![src[t]];
            if t > 0 {
                reads.push(src[t - 1]);
            }
            if t + 1 < nt {
                reads.push(src[t + 1]);
            }
            reads.push(power[t]);
            ctx.kernel(
                s,
                stencil_kernel(
                    format!("hotspot({t},{iter})"),
                    StencilShape {
                        cols,
                        rows: tile_rows[t],
                        has_above: t > 0,
                        has_below: t + 1 < nt,
                    },
                )
                .reading(reads)
                .writing([dst[t]]),
            )?;
        }
        ctx.barrier();
        std::mem::swap(&mut src, &mut dst);
    }

    // `src` now holds the final temperatures; stream them home.
    for t in 0..nt {
        let s = ctx.stream(t % streams)?;
        ctx.d2h(s, src[t])?;
    }
    let result_in_a = std::ptr::eq(src, &temp_a);
    Ok(HotspotBuffers {
        temp_a,
        temp_b,
        power,
        tile_rows,
        result_in_a,
    })
}

/// Deterministic initial temperature and power maps; returns `(temp, power)`
/// full grids.
pub fn fill_inputs(
    ctx: &Context,
    cfg: &HotspotConfig,
    bufs: &HotspotBuffers,
    seed: u64,
) -> Result<(Vec<f32>, Vec<f32>)> {
    let n = cfg.rows * cfg.cols;
    let temp = util::random_vec(seed, n, 60.0, 90.0);
    let power = util::random_vec(seed ^ 0xbeef, n, 0.0, 8.0);
    let mut row0 = 0usize;
    for (t, &rows) in bufs.tile_rows.iter().enumerate() {
        let lo = row0 * cfg.cols;
        let hi = (row0 + rows) * cfg.cols;
        ctx.write_host(bufs.temp_a[t], &temp[lo..hi])?;
        ctx.write_host(bufs.power[t], &power[lo..hi])?;
        row0 += rows;
    }
    Ok((temp, power))
}

/// Serial reference simulation on the full grid.
pub fn reference(cfg: &HotspotConfig, temp0: &[f32], power: &[f32]) -> Vec<f32> {
    let (rows, cols) = (cfg.rows, cfg.cols);
    let mut src = temp0.to_vec();
    let mut dst = vec![0.0f32; rows * cols];
    for _ in 0..cfg.iterations {
        for r in 0..rows {
            for c in 0..cols {
                let center = src[r * cols + c];
                let north = if r > 0 {
                    src[(r - 1) * cols + c]
                } else {
                    center
                };
                let south = if r + 1 < rows {
                    src[(r + 1) * cols + c]
                } else {
                    center
                };
                let west = if c > 0 { src[r * cols + c - 1] } else { center };
                let east = if c + 1 < cols {
                    src[r * cols + c + 1]
                } else {
                    center
                };
                dst[r * cols + c] = center
                    + K_VERT * (north + south - 2.0 * center)
                    + K_HORIZ * (east + west - 2.0 * center)
                    + K_POWER * power[r * cols + c]
                    + K_AMB * (AMBIENT - center);
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

/// Assemble the final grid from the context's host buffers.
pub fn collect_result(
    ctx: &Context,
    cfg: &HotspotConfig,
    bufs: &HotspotBuffers,
) -> Result<Vec<f32>> {
    let result = if bufs.result_in_a {
        &bufs.temp_a
    } else {
        &bufs.temp_b
    };
    let mut grid = vec![0.0f32; cfg.rows * cfg.cols];
    let mut row0 = 0usize;
    for (t, &rows) in bufs.tile_rows.iter().enumerate() {
        let data = ctx.read_host(result[t])?;
        let lo = row0 * cfg.cols;
        grid[lo..lo + rows * cfg.cols].copy_from_slice(&data);
        row0 += rows;
    }
    Ok(grid)
}

/// Build + run on the simulator: returns seconds.
pub fn simulate(cfg: &HotspotConfig, platform: PlatformConfig, partitions: usize) -> Result<f64> {
    let mut ctx = Context::builder(platform).partitions(partitions).build()?;
    build(&mut ctx, cfg)?;
    Ok(ctx.run_sim()?.makespan().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::assert_close;

    fn small(iters: usize, tiles: usize) -> HotspotConfig {
        HotspotConfig {
            rows: 32,
            cols: 24,
            iterations: iters,
            tiles,
        }
    }

    #[test]
    fn validation() {
        assert!(small(1, 4).validate().is_ok());
        assert!(HotspotConfig {
            tiles: 64,
            ..small(1, 1)
        }
        .validate()
        .is_err());
        assert!(HotspotConfig {
            rows: 0,
            ..small(1, 1)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn native_tiled_matches_reference() {
        for tiles in [1usize, 3, 4] {
            let cfg = small(5, tiles);
            let mut ctx = Context::builder(PlatformConfig::phi_31sp())
                .partitions(4)
                .build()
                .unwrap();
            let bufs = build(&mut ctx, &cfg).unwrap();
            let (temp, power) = fill_inputs(&ctx, &cfg, &bufs, 17).unwrap();
            ctx.run_native().unwrap();
            let got = collect_result(&ctx, &cfg, &bufs).unwrap();
            let want = reference(&cfg, &temp, &power);
            assert_close(&got, &want, 1e-3, &format!("hotspot tiles={tiles}"));
        }
    }

    #[test]
    fn odd_iteration_count_lands_in_other_buffer() {
        let cfg = small(3, 2);
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .partitions(2)
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        assert!(!bufs.result_in_a, "3 iterations end in temp_b");
        let (temp, power) = fill_inputs(&ctx, &cfg, &bufs, 4).unwrap();
        ctx.run_native().unwrap();
        let got = collect_result(&ctx, &cfg, &bufs).unwrap();
        assert_close(&got, &reference(&cfg, &temp, &power), 1e-3, "odd iters");
    }

    #[test]
    fn temperatures_relax_toward_equilibrium() {
        let cfg = small(50, 1);
        let mut ctx = Context::builder(PlatformConfig::phi_31sp())
            .build()
            .unwrap();
        let bufs = build(&mut ctx, &cfg).unwrap();
        let (temp, power) = fill_inputs(&ctx, &cfg, &bufs, 8).unwrap();
        ctx.run_native().unwrap();
        let got = collect_result(&ctx, &cfg, &bufs).unwrap();
        // Variance should shrink substantially vs the initial field.
        let var = |v: &[f32]| {
            let m = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|x| (x - m).powi(2)).sum::<f32>() / v.len() as f32
        };
        assert!(var(&got) < var(&temp) * 0.6, "diffusion smooths the field");
        let _ = power;
    }

    #[test]
    fn streaming_gives_no_gain_in_sim() {
        // Fig. 8(d): streamed Hotspot ≈ non-streamed.
        let cfg = HotspotConfig {
            rows: 4096,
            cols: 4096,
            iterations: 10,
            tiles: 1,
        };
        let wo = simulate(&cfg, PlatformConfig::phi_31sp(), 1).unwrap();
        let w = simulate(
            &HotspotConfig { tiles: 16, ..cfg },
            PlatformConfig::phi_31sp(),
            4,
        )
        .unwrap();
        let delta = (wo / w - 1.0).abs();
        assert!(
            delta < 0.30,
            "hotspot gain should be near zero, got {:.1}%",
            (wo / w - 1.0) * 100.0
        );
    }

    #[test]
    fn compact_partitions_win_in_sim() {
        // Fig. 9(d): P≈33-37 beats small P thanks to cache-friendly shape.
        let cfg = HotspotConfig {
            rows: 8192,
            cols: 8192,
            iterations: 5,
            tiles: 64,
        };
        let t2 = simulate(&cfg, PlatformConfig::phi_31sp(), 2).unwrap();
        let t35 = simulate(&cfg, PlatformConfig::phi_31sp(), 35).unwrap();
        assert!(t35 < t2, "P=35 ({t35}s) should beat P=2 ({t2}s)");
    }
}
