//! Property tests for the pruned `(P, T)` candidate space (Sec. V-C):
//! whatever the bounds, the pruning rules must hold structurally — core
//! alignment, `T = m·P`, bound caps, containment in the exhaustive grid —
//! and for paper-scale bounds the reduction must stay an order of
//! magnitude.

use micsim::device::DeviceSpec;
use proptest::prelude::*;
use stream_tune::candidates::{exhaustive_space, pruned_space, reduction_factor};
use stream_tune::TuneBounds;

fn phi() -> DeviceSpec {
    DeviceSpec::phi_31sp()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rule 1: every pruned P divides the usable core count (with the lone
    /// fallback P = 1 when nothing else fits the bound).
    #[test]
    fn every_p_divides_usable_cores(max_p in 1usize..=64, max_m in 1usize..=10) {
        let bounds = TuneBounds {
            max_partitions: max_p,
            max_tiles: 448,
            max_multiple: max_m,
        };
        let device = phi();
        let cores = device.usable_cores();
        for (p, _) in pruned_space(&device, &bounds).pairs {
            prop_assert!(
                cores.is_multiple_of(p),
                "P={} does not divide {} usable cores", p, cores
            );
        }
    }

    /// Rule 2: every pruned T is a multiple of its P.
    #[test]
    fn every_t_is_a_multiple_of_its_p(max_p in 1usize..=64, max_t in 1usize..=512, max_m in 1usize..=10) {
        let bounds = TuneBounds {
            max_partitions: max_p,
            max_tiles: max_t,
            max_multiple: max_m,
        };
        for (p, t) in pruned_space(&phi(), &bounds).pairs {
            prop_assert!(t.is_multiple_of(p), "T={} not a multiple of P={}", t, p);
        }
    }

    /// Rule 3: both bounds are respected, and the multiple cap holds.
    #[test]
    fn bounds_are_respected(max_p in 1usize..=64, max_t in 1usize..=512, max_m in 1usize..=10) {
        let bounds = TuneBounds {
            max_partitions: max_p,
            max_tiles: max_t,
            max_multiple: max_m,
        };
        for (p, t) in pruned_space(&phi(), &bounds).pairs {
            prop_assert!(p <= bounds.max_partitions, "P={} over bound", p);
            prop_assert!(t <= bounds.max_tiles, "T={} over bound", t);
            prop_assert!(t / p <= bounds.max_multiple, "m={} over bound", t / p);
        }
    }

    /// The pruned space is a subset of the exhaustive grid under the same
    /// bounds, with no duplicate candidates.
    #[test]
    fn pruned_is_a_subset_of_exhaustive(max_p in 1usize..=64, max_t in 1usize..=512, max_m in 1usize..=10) {
        let bounds = TuneBounds {
            max_partitions: max_p,
            max_tiles: max_t,
            max_multiple: max_m,
        };
        let full: std::collections::HashSet<(usize, usize)> =
            exhaustive_space(&bounds).pairs.into_iter().collect();
        let pruned = pruned_space(&phi(), &bounds).pairs;
        let unique: std::collections::HashSet<(usize, usize)> =
            pruned.iter().copied().collect();
        prop_assert_eq!(unique.len(), pruned.len(), "duplicates in pruned space");
        for pair in pruned {
            prop_assert!(full.contains(&pair), "{:?} not in exhaustive grid", pair);
        }
    }

    /// For paper-scale bounds (enough partitions that the divisor set is
    /// non-trivial, tile cap past the largest multiple) the pruning is at
    /// least an order of magnitude.
    #[test]
    fn reduction_is_at_least_an_order_of_magnitude(
        max_p in 14usize..=56,
        max_m in 1usize..=8,
        extra_t in 0usize..=64,
    ) {
        let bounds = TuneBounds {
            max_partitions: max_p,
            max_tiles: max_p * max_m + extra_t,
            max_multiple: max_m,
        };
        let r = reduction_factor(&phi(), &bounds);
        prop_assert!(r >= 10.0, "reduction {} below an order of magnitude", r);
    }
}
