//! Sim-vs-native parity smoke: `autotune --quick`'s contract as a test.
//!
//! On a deliberately overhead-dominated workload (tiny tiles, almost no
//! compute) both backends must make the same granularity decision — the
//! same [`PartitionClass`] — even though their absolute clocks differ by
//! orders of magnitude. Also locks the native evaluator's two economy
//! guarantees: one persistent runtime across every trial, and repeated
//! identical trials served entirely from the measurement cache.

use mic_apps::tunable::TunableHbench;
use micsim::PlatformConfig;
use stream_tune::evaluator::{Evaluator, NativeEvaluator, SimEvaluator};
use stream_tune::tuner::{RepeatPolicy, Strategy, Tuner};
use stream_tune::{partition_class, TuneBounds};

fn bounds() -> TuneBounds {
    TuneBounds {
        max_partitions: 8,
        max_tiles: 16,
        max_multiple: 2,
    }
}

/// Small on purpose: per-action overhead (launch, stream sync) dominates
/// both backends, so coarse granularity wins decisively on each — the
/// comparison needs a landscape whose signal clears native wall-clock
/// noise, not a photo-finish.
const ELEMS: usize = 1 << 14;
const ITERS: usize = 4;

#[test]
fn both_backends_pick_the_same_partition_class() {
    let platform = PlatformConfig::phi_31sp();

    let mut sim_app = TunableHbench::new(ELEMS, ITERS, None);
    let mut sim_eval = SimEvaluator::new(platform.clone()).unwrap();
    let sim = Tuner::new(RepeatPolicy::sim()).tune(
        &mut sim_app,
        &mut sim_eval,
        &platform,
        &bounds(),
        Strategy::Pruned,
    );

    let mut native_app = TunableHbench::new(ELEMS, ITERS, Some(42));
    let mut native_eval = NativeEvaluator::new(platform.clone(), bounds().max_partitions).unwrap();
    // Warm the persistent runtime: the first trial pays pool spawn and
    // page-in, which would otherwise poison one candidate's samples.
    native_eval.evaluate(&mut native_app, 2, 2).unwrap();
    let native = Tuner::new(RepeatPolicy::native()).tune(
        &mut native_app,
        &mut native_eval,
        &platform,
        &bounds(),
        Strategy::Pruned,
    );

    let sim_class = partition_class(&platform.device, sim.winner.0);
    let native_class = partition_class(&platform.device, native.winner.0);
    assert_eq!(
        sim_class, native_class,
        "sim winner {:?} vs native winner {:?}",
        sim.winner, native.winner
    );
}

#[test]
fn native_trials_reuse_one_runtime_and_hit_the_cache_on_repeat() {
    let platform = PlatformConfig::phi_31sp();
    let mut app = TunableHbench::new(ELEMS, ITERS, Some(7));
    let mut eval = NativeEvaluator::new(platform.clone(), bounds().max_partitions).unwrap();
    eval.evaluate(&mut app, 2, 2).unwrap();
    let threads = eval.thread_count().expect("runtime spawned by warmup");

    let mut tuner = Tuner::new(RepeatPolicy::native());
    let first = tuner.tune(&mut app, &mut eval, &platform, &bounds(), Strategy::Pruned);
    assert!(first.evaluator_calls >= first.candidates_visited);
    assert_eq!(
        eval.thread_count(),
        Some(threads),
        "worker pool respawned mid-sweep"
    );

    // Same tuner, same candidates: every trial must come from the cache.
    let second = tuner.tune(&mut app, &mut eval, &platform, &bounds(), Strategy::Pruned);
    assert_eq!(
        second.evaluator_calls, 0,
        "repeat pass must not touch the evaluator"
    );
    assert_eq!(second.winner, first.winner);
    assert!(
        tuner.cache.hits() >= first.candidates_visited,
        "cache hits {} < candidates {}",
        tuner.cache.hits(),
        first.candidates_visited
    );
}
