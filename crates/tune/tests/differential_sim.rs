//! Differential guarantees of the autotuner on the deterministic simulator:
//! for every overlappable app the cheap strategies (pruned, model-seeded)
//! must land within 5 % of the exhaustive optimum while evaluating a
//! fraction of the grid, and the whole loop must be bit-for-bit
//! reproducible — same winner, same visit order — across runs.

use mic_apps::tunable::{Tunable, TunableCf, TunableMm, TunableNn};
use micsim::PlatformConfig;
use stream_tune::evaluator::SimEvaluator;
use stream_tune::tuner::{RepeatPolicy, Strategy, TuneOutcome, Tuner};
use stream_tune::TuneBounds;

/// The three apps at sizes where streaming genuinely wins, each with the
/// bounds its structure calls for: the data-parallel MM and NN follow the
/// paper's `T = m·P, m ≤ 8` rule; task-graph CF wants far more tiles than
/// streams for lookahead, so its multiple cap runs up to the tile bound.
fn apps() -> Vec<(Box<dyn Tunable>, TuneBounds)> {
    let dp = TuneBounds {
        max_partitions: 8,
        max_tiles: 16,
        max_multiple: 8,
    };
    let cf = TuneBounds {
        max_partitions: 8,
        max_tiles: 144,
        max_multiple: 72,
    };
    vec![
        (Box::new(TunableMm::new(840, None)), dp),
        (Box::new(TunableCf::new(16800, None)), cf),
        (Box::new(TunableNn::new(1 << 20, None)), dp),
    ]
}

fn tune_fresh(app: &mut dyn Tunable, bounds: &TuneBounds, strategy: Strategy) -> TuneOutcome {
    let platform = PlatformConfig::phi_31sp();
    let mut eval = SimEvaluator::new(platform.clone()).unwrap();
    let mut tuner = Tuner::new(RepeatPolicy::sim());
    tuner.tune(app, &mut eval, &platform, bounds, strategy)
}

#[test]
fn pruned_and_model_seeded_within_5_percent_of_exhaustive() {
    for make in 0..apps().len() {
        let (mut app, bounds) = apps().swap_remove(make);
        let name = app.name();
        let full = tune_fresh(app.as_mut(), &bounds, Strategy::Exhaustive);
        for strategy in [Strategy::Pruned, Strategy::ModelSeeded] {
            let (mut app, bounds) = apps().swap_remove(make);
            let cheap = tune_fresh(app.as_mut(), &bounds, strategy);
            assert!(
                cheap.winner_seconds <= full.winner_seconds * 1.05,
                "{name}/{}: {} s vs exhaustive {} s at {:?}",
                strategy.label(),
                cheap.winner_seconds,
                full.winner_seconds,
                full.winner
            );
            assert!(
                cheap.candidates_visited < full.candidates_visited,
                "{name}/{}: cheap strategy must visit fewer candidates",
                strategy.label()
            );
        }
    }
}

#[test]
fn winner_and_visit_order_are_deterministic_across_runs() {
    for strategy in [
        Strategy::Exhaustive,
        Strategy::Pruned,
        Strategy::ModelSeeded,
    ] {
        for make in 0..apps().len() {
            let (mut app_a, bounds) = apps().swap_remove(make);
            let (mut app_b, _) = apps().swap_remove(make);
            let name = app_a.name();
            let a = tune_fresh(app_a.as_mut(), &bounds, strategy);
            let b = tune_fresh(app_b.as_mut(), &bounds, strategy);
            assert_eq!(a.winner, b.winner, "{name}/{} winner", strategy.label());
            assert_eq!(a.winner_seconds, b.winner_seconds);
            assert_eq!(
                a.visit_order,
                b.visit_order,
                "{name}/{} visit order",
                strategy.label()
            );
        }
    }
}

#[test]
fn model_seeded_finds_the_winner_early() {
    // Seeding exists to front-load good candidates: for every app with
    // pipeline costs, the eventual winner must sit in the first half of the
    // model-ordered visit sequence.
    for make in 0..apps().len() {
        let (mut app, bounds) = apps().swap_remove(make);
        let name = app.name();
        let out = tune_fresh(app.as_mut(), &bounds, Strategy::ModelSeeded);
        let pos = out
            .visit_order
            .iter()
            .position(|&c| c == out.winner)
            .unwrap();
        assert!(
            (pos + 1) * 2 <= out.visit_order.len() + 1,
            "{name}: winner {:?} at position {}/{}",
            out.winner,
            pos,
            out.visit_order.len()
        );
    }
}
