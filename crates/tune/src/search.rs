//! Search over a candidate space.

use crate::candidates::CandidateSpace;

/// Result of a tuning search.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchOutcome {
    /// Best `(partitions, tiles)` found.
    pub best: (usize, usize),
    /// Its objective value (lower is better; typically seconds).
    pub best_value: f64,
    /// Evaluations performed.
    pub evaluations: usize,
}

/// Evaluate `objective(P, T)` (lower is better) over every pair in `space`.
/// Pairs whose evaluation fails (`None`) are skipped — e.g. tile counts that
/// do not divide the problem size.
///
/// # Panics
/// Panics if no pair evaluates successfully.
pub fn search<F>(space: &CandidateSpace, mut objective: F) -> SearchOutcome
where
    F: FnMut(usize, usize) -> Option<f64>,
{
    let mut best: Option<((usize, usize), f64)> = None;
    let mut evaluations = 0usize;
    for &(p, t) in &space.pairs {
        let Some(v) = objective(p, t) else { continue };
        evaluations += 1;
        if best.is_none_or(|(_, bv)| v < bv) {
            best = Some(((p, t), v));
        }
    }
    let ((best_pair, best_value), _) = (best.expect("no candidate evaluated successfully"), ());
    SearchOutcome {
        best: best_pair,
        best_value,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{exhaustive_space, pruned_space, TuneBounds};
    use micsim::device::DeviceSpec;

    /// A synthetic objective with the paper's structure: best at moderate
    /// core-aligned P and T a small multiple of P.
    fn synthetic(p: usize, t: usize) -> Option<f64> {
        let misaligned = if 56 % p == 0 { 0.0 } else { 5.0 };
        let idle = if t.is_multiple_of(p) { 0.0 } else { 3.0 };
        let too_few = if t < p { 10.0 } else { 0.0 };
        Some(((p as f64) - 8.0).abs() + (t as f64 - 16.0).abs() * 0.1 + misaligned + idle + too_few)
    }

    #[test]
    fn pruned_search_finds_near_exhaustive_optimum() {
        let bounds = TuneBounds::default();
        let full = search(&exhaustive_space(&bounds), synthetic);
        let pruned = search(&pruned_space(&DeviceSpec::phi_31sp(), &bounds), synthetic);
        assert!(pruned.evaluations * 50 < full.evaluations);
        assert!(
            pruned.best_value <= full.best_value * 1.05 + 1e-9,
            "pruned {} vs full {}",
            pruned.best_value,
            full.best_value
        );
        assert_eq!(pruned.best, (8, 16));
    }

    #[test]
    fn failed_evaluations_are_skipped() {
        let space = CandidateSpace {
            pairs: vec![(1, 1), (2, 2), (3, 3)],
        };
        let out = search(&space, |p, _| if p == 2 { Some(1.0) } else { None });
        assert_eq!(out.evaluations, 1);
        assert_eq!(out.best, (2, 2));
    }

    #[test]
    #[should_panic(expected = "no candidate")]
    fn all_failures_panic() {
        let space = CandidateSpace {
            pairs: vec![(1, 1)],
        };
        search(&space, |_, _| None);
    }

    #[test]
    fn search_respects_lower_is_better() {
        let space = CandidateSpace {
            pairs: vec![(1, 1), (2, 1), (3, 1)],
        };
        let out = search(&space, |p, _| Some(10.0 - p as f64));
        assert_eq!(out.best, (3, 1));
        assert_eq!(out.best_value, 7.0);
        assert_eq!(out.evaluations, 3);
    }
}

/// Adaptive local search over `(P, T)` — the paper's "machine learning
/// techniques to obtain a proper value for P and T" future-work direction,
/// in its simplest robust form: start from a heuristic seed, hill-climb
/// over structured neighbour moves, restart from the best untried candidate
/// when stuck.
///
/// Moves: P steps along the core-aligned candidate list; T doubles, halves,
/// or steps by ±P (staying a multiple of P per Sec. V-C rule 2).
pub fn adaptive_search<F>(
    p_candidates: &[usize],
    max_tiles: usize,
    seed: (usize, usize),
    budget: usize,
    mut objective: F,
) -> SearchOutcome
where
    F: FnMut(usize, usize) -> Option<f64>,
{
    assert!(!p_candidates.is_empty(), "need at least one P candidate");
    let mut evaluated: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    let mut evaluations = 0usize;

    let clamp_t = |p: usize, t: usize| -> usize {
        let m = (t.max(p) / p).max(1);
        // Largest multiple of p within max_tiles; if even 1*p exceeds the
        // cap (p > max_tiles), fall back to p — T < P never makes sense.
        let cap_m = (max_tiles / p).max(1);
        (m.min(cap_m)) * p
    };

    let mut eval = |p: usize,
                    t: usize,
                    evaluated: &mut std::collections::HashMap<(usize, usize), f64>,
                    evaluations: &mut usize|
     -> Option<f64> {
        if let Some(&v) = evaluated.get(&(p, t)) {
            return Some(v);
        }
        let v = objective(p, t)?;
        evaluated.insert((p, t), v);
        *evaluations += 1;
        Some(v)
    };

    let seed_p = *p_candidates
        .iter()
        .min_by_key(|&&p| p.abs_diff(seed.0))
        .expect("non-empty");
    let mut current = (seed_p, clamp_t(seed_p, seed.1));
    let mut best: Option<((usize, usize), f64)> = None;

    while evaluations < budget {
        let Some(cur_val) = eval(current.0, current.1, &mut evaluated, &mut evaluations) else {
            break;
        };
        if best.is_none_or(|(_, bv)| cur_val < bv) {
            best = Some((current, cur_val));
        }
        // Neighbours.
        let pi = p_candidates
            .iter()
            .position(|&p| p == current.0)
            .unwrap_or(0);
        let mut neighbours: Vec<(usize, usize)> = Vec::new();
        if pi > 0 {
            let p = p_candidates[pi - 1];
            neighbours.push((p, clamp_t(p, current.1)));
        }
        if pi + 1 < p_candidates.len() {
            let p = p_candidates[pi + 1];
            neighbours.push((p, clamp_t(p, current.1)));
        }
        let (p, t) = current;
        neighbours.push((p, clamp_t(p, t * 2)));
        neighbours.push((p, clamp_t(p, t / 2)));
        neighbours.push((p, clamp_t(p, t + p)));
        neighbours.push((p, clamp_t(p, t.saturating_sub(p))));
        neighbours.retain(|n| *n != current);
        neighbours.dedup();

        let mut improved = false;
        for n in neighbours {
            if evaluations >= budget {
                break;
            }
            if let Some(v) = eval(n.0, n.1, &mut evaluated, &mut evaluations) {
                if v < cur_val {
                    current = n;
                    improved = true;
                    break; // first-improvement hill climbing
                }
            }
        }
        if !improved {
            break; // local optimum
        }
    }

    let ((bp, bt), bv) = best.expect("at least the seed evaluated");
    SearchOutcome {
        best: (bp, bt),
        best_value: bv,
        evaluations,
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    fn synthetic(p: usize, t: usize) -> Option<f64> {
        // Optimum at (8, 16), smooth basin, misaligned-P penalty.
        let misaligned = if 56 % p == 0 { 0.0 } else { 5.0 };
        Some(((p as f64) - 8.0).abs() + ((t as f64) - 16.0).abs() * 0.1 + misaligned)
    }

    #[test]
    fn adaptive_finds_the_basin_cheaply() {
        let p_set = [2usize, 4, 7, 8, 14, 28, 56];
        let out = adaptive_search(&p_set, 448, (2, 2), 64, synthetic);
        assert_eq!(out.best, (8, 16), "found {:?}", out.best);
        assert!(out.evaluations < 40, "used {} evals", out.evaluations);
    }

    #[test]
    fn adaptive_respects_budget() {
        let p_set = [2usize, 4, 7, 8, 14, 28, 56];
        let out = adaptive_search(&p_set, 448, (56, 448), 5, synthetic);
        assert!(out.evaluations <= 5);
    }

    #[test]
    fn adaptive_keeps_t_a_multiple_of_p() {
        let p_set = [4usize, 8];
        let mut seen = Vec::new();
        let _ = adaptive_search(&p_set, 64, (4, 10), 32, |p, t| {
            seen.push((p, t));
            synthetic(p, t)
        });
        for (p, t) in seen {
            assert_eq!(t % p, 0, "T={t} not a multiple of P={p}");
            assert!(t <= 64);
        }
    }

    #[test]
    fn adaptive_handles_failing_points() {
        let p_set = [2usize, 4];
        let out = adaptive_search(&p_set, 16, (2, 4), 32, |p, t| {
            if t > 8 {
                None
            } else {
                Some((p + t) as f64)
            }
        });
        assert!(out.best_value.is_finite());
    }
}
