//! Candidate-set construction for `(P, T)`.

use micsim::device::DeviceSpec;

/// Bounds on the search space.
#[derive(Clone, Copy, Debug)]
pub struct TuneBounds {
    /// Largest partition count to consider.
    pub max_partitions: usize,
    /// Largest tile count to consider.
    pub max_tiles: usize,
    /// In the pruned space, consider `T = m·P` for `m ∈ 1..=max_multiple`.
    pub max_multiple: usize,
}

impl Default for TuneBounds {
    fn default() -> Self {
        TuneBounds {
            max_partitions: 56,
            max_tiles: 448,
            max_multiple: 8,
        }
    }
}

/// A concrete `(P, T)` search space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateSpace {
    /// `(partitions, tiles)` pairs to evaluate.
    pub pairs: Vec<(usize, usize)>,
}

impl CandidateSpace {
    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// The exhaustive space: every `P ∈ 1..=max_partitions` crossed with every
/// `T ∈ 1..=max_tiles` (what "empirically enumerate all the possible
/// values" in the paper's Sec. V-A costs).
pub fn exhaustive_space(bounds: &TuneBounds) -> CandidateSpace {
    let mut pairs = Vec::new();
    for p in 1..=bounds.max_partitions {
        for t in 1..=bounds.max_tiles {
            pairs.push((p, t));
        }
    }
    CandidateSpace { pairs }
}

/// Sec. V-C rule 1: core-aligned partition counts for `device`, capped at
/// `max_partitions`. Excludes the trivial `P = 1` exactly as the paper's
/// quoted set does, unless nothing else fits.
pub fn partition_candidates(device: &DeviceSpec, max_partitions: usize) -> Vec<usize> {
    let mut divs: Vec<usize> = device
        .core_aligned_partition_counts()
        .into_iter()
        .filter(|&p| p > 1 && p <= max_partitions)
        .collect();
    if divs.is_empty() {
        divs.push(1);
    }
    divs
}

/// Sec. V-C rules 2-3: tile counts for a given `P`: multiples `m·P` with
/// `m ∈ 1..=max_multiple`, capped at `max_tiles`.
pub fn tile_candidates(p: usize, bounds: &TuneBounds) -> Vec<usize> {
    (1..=bounds.max_multiple)
        .map(|m| m * p)
        .filter(|&t| t <= bounds.max_tiles)
        .collect()
}

/// The pruned `(P, T)` space for `device` under `bounds`.
pub fn pruned_space(device: &DeviceSpec, bounds: &TuneBounds) -> CandidateSpace {
    let mut pairs = Vec::new();
    for p in partition_candidates(device, bounds.max_partitions) {
        for t in tile_candidates(p, bounds) {
            pairs.push((p, t));
        }
    }
    CandidateSpace { pairs }
}

/// Coarse equivalence class of a partition count, by how many whole cores
/// each partition spans. Two backends that disagree on the exact winning
/// `P` but agree on its class made the same granularity decision — the
/// comparison the sim-vs-native parity check needs, since wall-clock noise
/// can swap neighbouring divisors but not a whole regime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PartitionClass {
    /// The undivided device (`P = 1`).
    Whole,
    /// Few large partitions: at least a quarter of the cores each.
    Wide,
    /// Mid-size partitions: 2 or more cores each.
    Medium,
    /// Core-or-smaller partitions.
    Narrow,
}

/// Classify `p` partitions of `device` — see [`PartitionClass`].
pub fn partition_class(device: &DeviceSpec, p: usize) -> PartitionClass {
    if p <= 1 {
        return PartitionClass::Whole;
    }
    let cores = device.usable_cores();
    let per = cores / p;
    if per >= cores.div_ceil(4) {
        PartitionClass::Wide
    } else if per >= 2 {
        PartitionClass::Medium
    } else {
        PartitionClass::Narrow
    }
}

/// How much smaller the pruned space is than the exhaustive one.
pub fn reduction_factor(device: &DeviceSpec, bounds: &TuneBounds) -> f64 {
    let full = exhaustive_space(bounds).len();
    let pruned = pruned_space(device, bounds).len().max(1);
    full as f64 / pruned as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phi() -> DeviceSpec {
        DeviceSpec::phi_31sp()
    }

    #[test]
    fn partition_candidates_match_paper_set() {
        assert_eq!(
            partition_candidates(&phi(), 56),
            vec![2, 4, 7, 8, 14, 28, 56]
        );
        assert_eq!(partition_candidates(&phi(), 10), vec![2, 4, 7, 8]);
        // Nothing fits: fall back to P=1.
        assert_eq!(partition_candidates(&phi(), 1), vec![1]);
    }

    #[test]
    fn tile_candidates_are_multiples() {
        let bounds = TuneBounds::default();
        assert_eq!(
            tile_candidates(4, &bounds),
            vec![4, 8, 12, 16, 20, 24, 28, 32]
        );
        // Cap respected.
        let tight = TuneBounds {
            max_tiles: 10,
            ..bounds
        };
        assert_eq!(tile_candidates(4, &tight), vec![4, 8]);
    }

    #[test]
    fn pruned_space_only_contains_valid_pairs() {
        let bounds = TuneBounds::default();
        let space = pruned_space(&phi(), &bounds);
        assert!(!space.is_empty());
        for &(p, t) in &space.pairs {
            assert!(t % p == 0, "T={t} must be a multiple of P={p}");
            assert!(56 % p == 0, "P={p} must divide 56");
        }
    }

    #[test]
    fn reduction_is_an_order_of_magnitude() {
        let bounds = TuneBounds::default();
        let r = reduction_factor(&phi(), &bounds);
        // 56*448 = 25088 exhaustive vs 7*8 = 56 pruned => ~448x.
        assert!(r > 100.0, "reduction factor {r}");
    }

    #[test]
    fn partition_classes_on_the_31sp() {
        let d = phi();
        assert_eq!(partition_class(&d, 1), PartitionClass::Whole);
        assert_eq!(partition_class(&d, 2), PartitionClass::Wide);
        assert_eq!(partition_class(&d, 4), PartitionClass::Wide);
        assert_eq!(partition_class(&d, 8), PartitionClass::Medium);
        assert_eq!(partition_class(&d, 28), PartitionClass::Medium);
        assert_eq!(partition_class(&d, 56), PartitionClass::Narrow);
    }

    #[test]
    fn exhaustive_space_size() {
        let bounds = TuneBounds {
            max_partitions: 3,
            max_tiles: 5,
            max_multiple: 2,
        };
        assert_eq!(exhaustive_space(&bounds).len(), 15);
    }
}
