//! Analytical pipeline performance model.
//!
//! The paper closes Sec. V-C with: *"To further reduce the search space, we
//! need a fine analytical performance model \[8\]\[9\]\[10\]... will be
//! investigated as our future work."* This module supplies that model for
//! the serial-duplex platform, in the style of Gómez-Luna et al. (optimal
//! stream count from closed forms) and van Werkhoven et al. (dominant-
//! transfer vs dominant-kernel regimes):
//!
//! With `T` tiles over `S` streams on a platform whose link moves
//! `bytes_total` at bandwidth `B` with per-transfer latency `ℓ`, and whose
//! device retires the total kernel work `K` at full-device rate `R` with a
//! per-launch overhead `o` (assuming near-perfect strong scaling of a tile
//! across its partition — valid when tiles are large, see
//! [`micsim::compute::KernelProfile::half_work_per_thread`]):
//!
//! * link path:    `L(T) = bytes_total/B + n_xfers(T)·ℓ`
//! * compute path: `C(S,T) = K/R + ⌈T/S⌉·o`
//! * stream path:  `F(S,T) = ⌈T/S⌉·(th_tile + tk_tile + td_tile + o)` —
//!   actions within one stream are FIFO, so a stream's own transfers never
//!   hide under its own kernels; with few streams this bound dominates
//! * ramp (exposed first input + last output): `ramp(T) ≈ bytes_total/(B·T)`
//! * makespan:     `M(S,T) ≈ max(L, C, F) + ramp`
//!
//! Minimizing over `T` on the latency-vs-ramp trade-off gives the
//! square-root law `T* ≈ sqrt(bytes_total/B / (x·ℓ + o/S))` (clamped to at
//! least `S`), which is what [`PipelineModel::optimal_tiles`] returns.
//!
//! The model is validated against the discrete-event simulator in this
//! module's tests: it must classify the relative performance of `(S, T)`
//! configurations correctly (the claim its ancestors make on GPUs), not
//! match every absolute number.

/// Closed-form model of one streamed, tiled workload.
///
/// ```
/// use stream_tune::PipelineModel;
/// let model = PipelineModel {
///     bytes_h2d: 16.0 * (1 << 20) as f64,
///     bytes_d2h: 16.0 * (1 << 20) as f64,
///     transfers_per_tile: 2.0,
///     kernel_work: 4.0 * (1 << 20) as f64 * 40.0,
///     device_rate: 32.0e9,
///     launch_overhead: 60e-6,
///     link_bandwidth: 7.0e9,
///     link_latency: 15e-6,
/// };
/// // More tiles amortize the ramp until per-tile latency wins: the
/// // square-root law lands between the extremes and beats the
/// // latency-swamped maximum tiling.
/// let t_star = model.optimal_tiles(4, 256);
/// assert!(t_star >= 4 && t_star <= 256);
/// assert!(model.makespan(4, t_star) < model.makespan(4, 256));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineModel {
    /// Total bytes moved host→device across the run.
    pub bytes_h2d: f64,
    /// Total bytes moved device→host.
    pub bytes_d2h: f64,
    /// Transfers per tile (e.g. 2 for one input + one output buffer).
    pub transfers_per_tile: f64,
    /// Total kernel work (unit of `device_rate`).
    pub kernel_work: f64,
    /// Full-device kernel rate (work units / second).
    pub device_rate: f64,
    /// Per-kernel-launch overhead in seconds.
    pub launch_overhead: f64,
    /// Link bandwidth in bytes/second (serial duplex: both directions share).
    pub link_bandwidth: f64,
    /// Per-transfer latency in seconds.
    pub link_latency: f64,
}

impl PipelineModel {
    /// Pure transfer time of the whole dataset at `tiles` granularity.
    pub fn link_time(&self, tiles: usize) -> f64 {
        let n_xfers = self.transfers_per_tile * tiles as f64;
        (self.bytes_h2d + self.bytes_d2h) / self.link_bandwidth + n_xfers * self.link_latency
    }

    /// Compute-path time with `streams` streams and `tiles` tiles.
    pub fn compute_time(&self, streams: usize, tiles: usize) -> f64 {
        let per_stream_tasks = (tiles as f64 / streams as f64).ceil();
        self.kernel_work / self.device_rate + per_stream_tasks * self.launch_overhead
    }

    /// Pipeline fill/drain cost: the first tile's input and last tile's
    /// output cannot overlap anything.
    pub fn ramp(&self, tiles: usize) -> f64 {
        (self.bytes_h2d + self.bytes_d2h) / self.link_bandwidth / tiles as f64
    }

    /// Per-stream FIFO bound: one stream's transfers serialize against its
    /// own kernels, so each stream needs at least its serial chain.
    pub fn stream_serial_time(&self, streams: usize, tiles: usize) -> f64 {
        let t = tiles as f64;
        let th_tile = self.bytes_h2d / self.link_bandwidth / t + self.link_latency;
        let td_tile = self.bytes_d2h / self.link_bandwidth / t + self.link_latency;
        let tk_tile = self.kernel_work * streams as f64 / (t * self.device_rate);
        (tiles as f64 / streams as f64).ceil()
            * (th_tile + tk_tile + td_tile + self.launch_overhead)
    }

    /// Predicted makespan.
    pub fn makespan(&self, streams: usize, tiles: usize) -> f64 {
        assert!(streams > 0 && tiles > 0);
        self.link_time(tiles)
            .max(self.compute_time(streams, tiles))
            .max(self.stream_serial_time(streams, tiles))
            + self.ramp(tiles)
    }

    /// Which regime a configuration is in (the van-Werkhoven distinction).
    pub fn dominant_transfers(&self, streams: usize, tiles: usize) -> bool {
        self.link_time(tiles) >= self.compute_time(streams, tiles)
    }

    /// The square-root law: tile count minimizing latency + ramp + launch
    /// overhead, clamped to `streams..=max_tiles`.
    pub fn optimal_tiles(&self, streams: usize, max_tiles: usize) -> usize {
        let per_tile_cost =
            self.transfers_per_tile * self.link_latency + self.launch_overhead / streams as f64;
        let volume = (self.bytes_h2d + self.bytes_d2h) / self.link_bandwidth;
        let t = if per_tile_cost > 0.0 {
            (volume / per_tile_cost).sqrt()
        } else {
            max_tiles as f64
        };
        (t.round() as usize).clamp(streams, max_tiles.max(streams))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstreams::Context;
    use mic_apps::hbench::{overlap_program, OverlapVariant};
    use micsim::PlatformConfig;

    /// Model for the hBench streamed program on the calibrated platform.
    fn hbench_model(elems: usize, iters: usize) -> PipelineModel {
        let cfg = PlatformConfig::phi_31sp();
        PipelineModel {
            bytes_h2d: (elems * 4) as f64,
            bytes_d2h: (elems * 4) as f64,
            transfers_per_tile: 2.0,
            kernel_work: elems as f64 * iters as f64,
            device_rate: 0.32e9 * 100.8, // profiles::hbench on the full device
            launch_overhead: cfg.compute.launch_overhead.as_secs_f64(),
            link_bandwidth: cfg.link.bandwidth,
            link_latency: cfg.link.latency.as_secs_f64(),
        }
    }

    fn simulate(elems: usize, iters: usize, streams: usize, tiles: usize) -> f64 {
        let ctx: Context = overlap_program(
            PlatformConfig::phi_31sp(),
            elems,
            iters,
            streams,
            OverlapVariant::Streamed { tiles },
        )
        .unwrap();
        ctx.run_sim().unwrap().makespan().as_secs_f64()
    }

    #[test]
    fn model_tracks_simulator_within_30_percent() {
        let elems = 4 << 20;
        let iters = 40;
        let model = hbench_model(elems, iters);
        for &(s, t) in &[(2usize, 8usize), (4, 16), (4, 32), (8, 32), (8, 64)] {
            let predicted = model.makespan(s, t);
            let measured = simulate(elems, iters, s, t);
            let err = (predicted - measured).abs() / measured;
            assert!(
                err < 0.30,
                "S={s} T={t}: model {predicted:.4} vs sim {measured:.4} ({:.0}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn model_classifies_relative_performance() {
        // The ancestor models' claim: correct *ranking*, not exact values.
        let elems = 4 << 20;
        let iters = 40;
        let model = hbench_model(elems, iters);
        let configs = [
            (4usize, 4usize),
            (4, 16),
            (4, 64),
            (4, 256),
            (2, 16),
            (8, 16),
        ];
        let mut pairs_checked = 0;
        for &a in &configs {
            for &b in &configs {
                let (pa, pb) = (model.makespan(a.0, a.1), model.makespan(b.0, b.1));
                // Only rank pairs the model separates clearly (>15%).
                if pa < pb * 0.85 {
                    let (ma, mb) = (
                        simulate(elems, iters, a.0, a.1),
                        simulate(elems, iters, b.0, b.1),
                    );
                    assert!(
                        ma < mb * 1.05,
                        "model says {a:?} << {b:?} but sim disagrees: {ma} vs {mb}"
                    );
                    pairs_checked += 1;
                }
            }
        }
        assert!(pairs_checked >= 3, "test must exercise real rankings");
    }

    #[test]
    fn optimal_tiles_is_near_the_simulated_optimum() {
        let elems = 4 << 20;
        let iters = 40;
        let model = hbench_model(elems, iters);
        let streams = 4;
        let t_star = model.optimal_tiles(streams, 256);
        // Simulated best over a broad sweep.
        let sweep: Vec<usize> = vec![4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256];
        let best = sweep
            .iter()
            .copied()
            .min_by(|&a, &b| {
                simulate(elems, iters, streams, a).total_cmp(&simulate(elems, iters, streams, b))
            })
            .unwrap();
        // Within 4x either way (the optimum is a broad basin).
        assert!(
            t_star <= best * 4 && best <= t_star * 4,
            "model T*={t_star} vs simulated best {best}"
        );
        // And the model's choice must cost within 15% of the sweep's best.
        let at_star = simulate(elems, iters, streams, t_star.clamp(4, 256));
        let at_best = simulate(elems, iters, streams, best);
        assert!(
            at_star <= at_best * 1.15,
            "model's T* costs {at_star} vs best {at_best}"
        );
    }

    #[test]
    fn regime_classification_matches_fig6() {
        // Below the 40-iteration crossover: dominant transfers; above:
        // dominant kernel — the paper's Fig. 6 distinction.
        let elems = 4 << 20;
        let low = hbench_model(elems, 20);
        let high = hbench_model(elems, 60);
        assert!(low.dominant_transfers(4, 16));
        assert!(!high.dominant_transfers(4, 16));
    }

    #[test]
    fn optimal_tiles_clamps() {
        let model = hbench_model(1 << 20, 40);
        assert!(model.optimal_tiles(8, 4) >= 8, "clamped up to streams");
        assert!(model.optimal_tiles(2, 16) <= 16, "clamped to max_tiles");
    }
}
