//! Measurement backends for the closed-loop autotuner.
//!
//! An [`Evaluator`] turns one `(P, T)` candidate into a [`Measurement`] by
//! actually running the app's program — through the discrete-event simulator
//! ([`SimEvaluator`]) or through the pooled native executor
//! ([`NativeEvaluator`]). Both reuse **one** [`Context`] across every trial:
//! [`Context::replan`] swaps the partition geometry without touching
//! buffers, and the native evaluator's context is built with
//! [`replan_capacity`](hstreams::context::ContextBuilder::replan_capacity)
//! so its persistent [`NativeRuntime`](hstreams) worker pool is sized once
//! and never respawned — hundreds of trials cost hundreds of runs, not
//! hundreds of thread-pool startups.

use std::sync::Arc;

use hstreams::context::Context;
use hstreams::executor::native::NativeConfig;
use hstreams::{FaultPlan, SchedulerKind};
use micsim::PlatformConfig;

use mic_apps::tunable::Tunable;

/// One trial's outcome: wall time plus how much of the transfer time was
/// hidden under compute (from the run's unified timeline — sim and native
/// produce the same representation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Makespan in seconds.
    pub seconds: f64,
    /// Fraction of link-busy time overlapped with compute, `0..=1`.
    pub hidden_fraction: f64,
}

/// Something that can price a `(P, T)` candidate by running it.
/// `None` means the candidate is infeasible for this app (e.g. a tile count
/// MM cannot factor) or the run failed; the tuner skips it.
pub trait Evaluator {
    /// Backend label for reports, e.g. `"sim"`.
    fn backend(&self) -> &'static str;

    /// Run `app` at `t` tasks over `p` partitions and measure it.
    fn evaluate(&mut self, app: &mut dyn Tunable, p: usize, t: usize) -> Option<Measurement>;

    /// Select the DAG scheduler subsequent trials run under. Defaults to a
    /// no-op so backends without a scheduling notion (scripted test
    /// evaluators) need not care; the real backends forward the kind to
    /// their context / native config.
    fn set_scheduler(&mut self, kind: SchedulerKind) {
        let _ = kind;
    }

    /// A *sound* lower bound on what [`evaluate`](Evaluator::evaluate)
    /// would measure for this candidate, in seconds — or `None` when the
    /// backend cannot promise one. The tuner uses it to prune candidates
    /// that provably cannot beat the incumbent without paying for a run,
    /// so an unsound bound silently corrupts the winner: backends must
    /// only return `Some` when the inequality `bound ≤ measurement` is a
    /// theorem, not a heuristic. Defaults to `None` (no pruning).
    fn lower_bound(&mut self, app: &mut dyn Tunable, p: usize, t: usize) -> Option<f64> {
        let _ = (app, p, t);
        None
    }
}

/// Deterministic evaluator: replans one simulator-backed context and prices
/// the recorded program with the calibrated discrete-event engine. Zero
/// native threads, identical numbers on every call.
pub struct SimEvaluator {
    ctx: Context,
    optimize: bool,
}

impl SimEvaluator {
    /// Build the shared context for `platform`.
    pub fn new(platform: PlatformConfig) -> hstreams::types::Result<SimEvaluator> {
        let ctx = Context::builder(platform).build()?;
        Ok(SimEvaluator {
            ctx,
            optimize: false,
        })
    }

    /// Run the sync-elision optimizer
    /// ([`Context::apply_optimizer`]) over every recorded candidate before
    /// simulating it — the tuner's opt-in to [`hstreams::opt`].
    pub fn with_optimizer(mut self, on: bool) -> SimEvaluator {
        self.optimize = on;
        self
    }

    /// The shared context (e.g. to inspect buffers after tuning).
    pub fn context(&self) -> &Context {
        &self.ctx
    }
}

impl Evaluator for SimEvaluator {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn evaluate(&mut self, app: &mut dyn Tunable, p: usize, t: usize) -> Option<Measurement> {
        if !app.feasible(t) {
            return None;
        }
        self.ctx.replan(p).ok()?;
        app.record(&mut self.ctx, t).ok()?;
        if self.optimize {
            self.ctx.apply_optimizer();
        }
        let report = self.ctx.run_sim().ok()?;
        let stats = report.overlap();
        Some(Measurement {
            seconds: report.makespan().as_secs_f64(),
            hidden_fraction: stats.hidden_fraction(),
        })
    }

    fn set_scheduler(&mut self, kind: SchedulerKind) {
        self.ctx.set_scheduler(kind);
    }

    /// [`hstreams::opt::static_cost`]'s makespan lower bound for the
    /// candidate's recorded program. Sound against the simulator because
    /// the cost model prices actions with the exact formulas the
    /// simulator executes and the simulator's dependency edges are a
    /// superset of the happens-before edges — but **only under FIFO**:
    /// the other schedulers re-place and reorder the recorded program, so
    /// the bound declines (`None`) for them.
    fn lower_bound(&mut self, app: &mut dyn Tunable, p: usize, t: usize) -> Option<f64> {
        if self.ctx.scheduler() != SchedulerKind::Fifo || !app.feasible(t) {
            return None;
        }
        self.ctx.replan(p).ok()?;
        app.record(&mut self.ctx, t).ok()?;
        if self.optimize {
            self.ctx.apply_optimizer();
        }
        Some(self.ctx.static_cost()?.makespan_lower_bound)
    }
}

/// Real evaluator: runs each candidate through the persistent native
/// executor with tracing on, reading makespan and hidden fraction from the
/// measured timeline. The context is created with `replan_capacity = max P`
/// so the first native run sizes the worker pool for the whole sweep —
/// [`thread_count`](NativeEvaluator::thread_count) stays constant across
/// trials (asserted by the parity smoke test).
pub struct NativeEvaluator {
    ctx: Context,
    cfg: NativeConfig,
    faulted: Vec<FaultedTrial>,
}

/// A `(P, T)` candidate whose native run failed (e.g. under an injected
/// [`FaultPlan`]): recorded instead of silently dropped, so a chaos sweep
/// can report *which* trials a fault killed while the tuner keeps sweeping.
#[derive(Clone, Debug)]
pub struct FaultedTrial {
    /// Partition count of the failed trial.
    pub p: usize,
    /// Task count of the failed trial.
    pub t: usize,
    /// The error's display form.
    pub error: String,
}

impl NativeEvaluator {
    /// Build the shared context, pre-sized for partition counts up to
    /// `max_partitions`.
    pub fn new(
        platform: PlatformConfig,
        max_partitions: usize,
    ) -> hstreams::types::Result<NativeEvaluator> {
        let ctx = Context::builder(platform)
            .replan_capacity(max_partitions)
            .build()?;
        Ok(NativeEvaluator {
            ctx,
            cfg: NativeConfig {
                trace: true,
                persistent: true,
                ..NativeConfig::default()
            },
            faulted: Vec::new(),
        })
    }

    /// Inject `plan` into every trial (chaos sweeps): each native run rolls
    /// the plan's dice, and a trial the faults kill is recorded in
    /// [`faulted_trials`](NativeEvaluator::faulted_trials) and skipped
    /// instead of aborting the sweep.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> NativeEvaluator {
        self.cfg.fault = Some(Arc::new(plan));
        self
    }

    /// Trials whose native run failed, in evaluation order.
    pub fn faulted_trials(&self) -> &[FaultedTrial] {
        &self.faulted
    }

    /// Threads owned by the persistent runtime, once the first trial ran.
    pub fn thread_count(&self) -> Option<usize> {
        self.ctx.native_thread_count()
    }

    /// The shared context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }
}

impl Evaluator for NativeEvaluator {
    fn backend(&self) -> &'static str {
        "native"
    }

    fn evaluate(&mut self, app: &mut dyn Tunable, p: usize, t: usize) -> Option<Measurement> {
        if !app.feasible(t) {
            return None;
        }
        if self.ctx.replan(p).is_err() || app.record(&mut self.ctx, t).is_err() {
            return None;
        }
        let report = match self.ctx.run_native_with(&self.cfg) {
            Ok(report) => report,
            Err(err) => {
                // A faulted run must not abort the sweep: record it so the
                // caller can tell *which* candidates died, then move on.
                self.faulted.push(FaultedTrial {
                    p,
                    t,
                    error: err.to_string(),
                });
                return None;
            }
        };
        match report.trace {
            Some(trace) => {
                let stats = trace.overlap();
                Some(Measurement {
                    seconds: stats.makespan.as_secs_f64(),
                    hidden_fraction: stats.hidden_fraction(),
                })
            }
            // Empty program: fall back to the wall clock.
            None => Some(Measurement {
                seconds: report.wall.as_secs_f64(),
                hidden_fraction: 0.0,
            }),
        }
    }

    fn set_scheduler(&mut self, kind: SchedulerKind) {
        self.cfg.scheduler = Some(kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mic_apps::tunable::TunableHbench;

    #[test]
    fn sim_evaluator_is_deterministic_across_calls() {
        let mut ev = SimEvaluator::new(PlatformConfig::phi_31sp()).unwrap();
        let mut app = TunableHbench::new(1 << 14, 8, None);
        let a = ev.evaluate(&mut app, 4, 8).unwrap();
        let b = ev.evaluate(&mut app, 4, 8).unwrap();
        assert_eq!(a, b);
        assert!(a.seconds > 0.0);
    }

    #[test]
    fn sim_lower_bound_is_sound_and_fifo_only() {
        let mut ev = SimEvaluator::new(PlatformConfig::phi_31sp()).unwrap();
        let mut app = TunableHbench::new(1 << 14, 8, None);
        for (p, t) in [(1usize, 2usize), (2, 4), (4, 8), (4, 2)] {
            let lb = ev.lower_bound(&mut app, p, t).expect("FIFO sim can bound");
            let m = ev.evaluate(&mut app, p, t).unwrap();
            assert!(
                lb > 0.0 && lb <= m.seconds + 1e-12,
                "bound must be sound at P={p} T={t}: {lb} vs {}",
                m.seconds
            );
        }
        // Non-FIFO schedulers re-place the program: the bound declines.
        ev.set_scheduler(SchedulerKind::ListHeft);
        assert!(ev.lower_bound(&mut app, 4, 8).is_none());
    }

    #[test]
    fn sim_evaluator_with_optimizer_measures_identically_on_minimal_apps() {
        // The tunable apps record already-minimal sync, so opting into the
        // optimizer must not change what the simulator measures.
        // One app per evaluator: a Tunable binds to the context it first
        // records into.
        let mut plain = SimEvaluator::new(PlatformConfig::phi_31sp()).unwrap();
        let a = plain
            .evaluate(&mut TunableHbench::new(1 << 14, 8, None), 4, 8)
            .unwrap();
        let mut opted = SimEvaluator::new(PlatformConfig::phi_31sp())
            .unwrap()
            .with_optimizer(true);
        let b = opted
            .evaluate(&mut TunableHbench::new(1 << 14, 8, None), 4, 8)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sim_evaluator_skips_infeasible_candidates() {
        let mut ev = SimEvaluator::new(PlatformConfig::phi_31sp()).unwrap();
        let mut app = mic_apps::tunable::TunableMm::new(32, None);
        assert!(ev.evaluate(&mut app, 2, 3).is_none(), "3 not a square");
        assert!(ev.evaluate(&mut app, 2, 4).is_some());
    }

    #[test]
    fn native_evaluator_keeps_one_runtime_across_geometries() {
        let mut ev = NativeEvaluator::new(PlatformConfig::phi_31sp(), 8).unwrap();
        let mut app = TunableHbench::new(1 << 12, 2, Some(11));
        assert!(ev.thread_count().is_none(), "no runtime before first run");
        ev.evaluate(&mut app, 2, 4).unwrap();
        let threads = ev.thread_count().expect("runtime spawned");
        for p in [4usize, 8, 1] {
            let m = ev.evaluate(&mut app, p, 8).unwrap();
            assert!(m.seconds > 0.0);
            assert_eq!(ev.thread_count(), Some(threads), "pool respawned at P={p}");
        }
    }

    #[test]
    fn faulted_trials_are_recorded_not_fatal() {
        let plan = FaultPlan::seeded(7).alloc_failures(1.0);
        let mut ev = NativeEvaluator::new(PlatformConfig::phi_31sp(), 4)
            .unwrap()
            .with_fault_plan(plan);
        let mut app = TunableHbench::new(1 << 12, 2, Some(5));
        assert!(ev.evaluate(&mut app, 2, 2).is_none(), "faulted trial skips");
        assert!(ev.evaluate(&mut app, 4, 2).is_none());
        let faulted = ev.faulted_trials();
        assert_eq!(faulted.len(), 2);
        assert_eq!((faulted[0].p, faulted[0].t), (2, 2));
        assert!(
            faulted[0].error.contains("fault at alloc"),
            "typed error surfaced: {}",
            faulted[0].error
        );
    }

    #[test]
    fn native_measurement_carries_overlap_stats() {
        let mut ev = NativeEvaluator::new(PlatformConfig::phi_31sp(), 4).unwrap();
        let mut app = TunableHbench::new(1 << 14, 16, Some(3));
        let m = ev.evaluate(&mut app, 4, 8).unwrap();
        assert!((0.0..=1.0).contains(&m.hidden_fraction));
    }
}
