//! # stream-tune — task/resource granularity selection (paper Sec. V-C)
//!
//! Choosing the number of partitions `P` and tiles `T` by brute force means
//! evaluating every `(P, T)` pair — hundreds of runs. The paper proposes
//! pruning rules that shrink the space by an order of magnitude:
//!
//! 1. **P from the core-divisor set** — partition counts that divide the
//!    usable core count keep every partition on whole cores, avoiding the
//!    cache contention that wrecks the other values (Fig. 9(a,b)):
//!    `P ∈ {2, 4, 7, 8, 14, 28, 56}` on the 31SP.
//! 2. **T = m·P** — tiles must be a multiple of the partition count or some
//!    partitions idle (the cliff at `T < P` in Fig. 10).
//! 3. **T bounded** — large enough to exploit pipelining, small enough to
//!    amortize per-task launch overhead; the paper's measured optima sit at
//!    small multiples, so the default bound is `m ≤ max_multiple`.
//!
//! [`search`] runs any evaluation function over the full or pruned space
//! and reports both the winner and the evaluation count, so the reduction
//! factor is measurable. [`model`] goes one step further — the analytical
//! pipeline model the paper names as future work — predicting makespans in
//! closed form and the optimal tile count by a square-root law.
//!
//! The loop is closed by the measurement-driven autotuner: a
//! [`tuner::Tuner`] walks a [`tuner::Strategy`]'s candidate order and
//! prices each `(P, T)` through an [`evaluator::Evaluator`] — the
//! deterministic simulator or the pooled native executor — with a
//! [`cache::MeasurementCache`] and early stopping keeping repeat visits
//! and hopeless candidates cheap. [`tuner::Tuner::tune_schedulers`] widens
//! the space to `(P, T, scheduler)`, pricing each candidate under FIFO,
//! HEFT list scheduling, and work stealing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod candidates;
pub mod evaluator;
pub mod model;
pub mod search;
pub mod tuner;

pub use cache::{CacheKey, MeasurementCache, Trial};
pub use candidates::{partition_class, pruned_space, CandidateSpace, PartitionClass, TuneBounds};
pub use evaluator::{Evaluator, Measurement, NativeEvaluator, SimEvaluator};
pub use model::PipelineModel;
pub use search::SearchOutcome;
pub use tuner::{RepeatPolicy, SchedSweepOutcome, Strategy, TuneOutcome, Tuner};
