//! The closed-loop autotuner: measurement-driven `(P, T)` selection.
//!
//! [`Tuner::tune`] walks a candidate order chosen by [`Strategy`] —
//! exhaustive grid, the paper's Sec. V-C pruned space, or the pruned space
//! re-ordered by the analytical [`PipelineModel`]'s predictions — and prices
//! each candidate through an [`Evaluator`]. Three mechanisms keep the loop
//! cheap and reproducible:
//!
//! * **Measurement cache** — aggregated trials are memoized by
//!   `(app, problem, P, T, scheduler)`; a revisit costs zero evaluator
//!   calls.
//! * **Early stopping** — on a noisy (native) backend each candidate is
//!   repeated only until its confidence interval clears the incumbent
//!   ([`RepeatPolicy`]); confidently-worse candidates stop at `min_reps`.
//! * **Deterministic tie-breaking** — candidate order is a pure function of
//!   strategy and bounds, and equal-valued winners resolve to the
//!   lexicographically smallest `(P, T)`, so the same inputs always produce
//!   the same winner *and* the same visit order.

use hstreams::SchedulerKind;
use micsim::stats::Summary;
use micsim::{PartitionPlan, PlatformConfig};

use mic_apps::tunable::{PipelineCosts, Tunable};

use crate::cache::{CacheKey, MeasurementCache, Trial};
use crate::candidates::{exhaustive_space, pruned_space, TuneBounds};
use crate::evaluator::Evaluator;
use crate::model::PipelineModel;

/// How the candidate order is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Every `(P, T)` in the bounds, `P`-major ascending — the paper's
    /// "empirically enumerate all the possible values" baseline.
    Exhaustive,
    /// The Sec. V-C pruned space (core-aligned `P`, `T = m·P`).
    Pruned,
    /// The pruned space visited in order of the analytical model's
    /// predicted makespan (falls back to [`Strategy::Pruned`] order for
    /// apps without pipeline costs).
    ModelSeeded,
}

impl Strategy {
    /// Stable label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Pruned => "pruned",
            Strategy::ModelSeeded => "model_seeded",
        }
    }
}

/// Repetition and early-stopping policy for one backend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepeatPolicy {
    /// Repetitions before a candidate may be pruned.
    pub min_reps: usize,
    /// Repetitions for candidates that stay competitive.
    pub max_reps: usize,
    /// Confidence width in standard errors: a candidate stops early once
    /// `mean − z·sem > incumbent` (it is confidently worse).
    pub z: f64,
}

impl RepeatPolicy {
    /// Simulator: deterministic, one repetition tells all.
    pub fn sim() -> RepeatPolicy {
        RepeatPolicy {
            min_reps: 1,
            max_reps: 1,
            z: 0.0,
        }
    }

    /// Native: wall-clock noise is real — repeat up to `max_reps`, but
    /// abandon a candidate at `min_reps` once its 95 % interval clears the
    /// incumbent.
    pub fn native() -> RepeatPolicy {
        RepeatPolicy {
            min_reps: 2,
            max_reps: 5,
            z: 1.96,
        }
    }
}

/// One visited configuration in the tuning landscape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialRecord {
    /// Resource granularity `P`.
    pub partitions: usize,
    /// Task granularity `T`.
    pub tiles: usize,
    /// Ranking value: best observed seconds over the repetitions (equal to
    /// the single sample on the deterministic simulator). Wall-clock noise
    /// is one-sided — contention only ever adds time — so the minimum is
    /// the noise-robust estimate of a configuration's true cost.
    pub seconds: f64,
    /// Mean hidden fraction.
    pub hidden_fraction: f64,
    /// Repetitions actually performed (early stopping shortens this).
    pub reps: usize,
    /// Whether the trial was served from the measurement cache.
    pub cached: bool,
}

/// Result of one tuning run.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// Strategy that produced this outcome.
    pub strategy: Strategy,
    /// Best `(P, T)` found.
    pub winner: (usize, usize),
    /// Its best observed makespan in seconds (see [`TrialRecord::seconds`]).
    pub winner_seconds: f64,
    /// Actual evaluator invocations (cache hits and infeasible candidates
    /// cost zero).
    pub evaluator_calls: usize,
    /// Feasible candidates visited (measured or cache-served).
    pub candidates_visited: usize,
    /// Candidates skipped because the app cannot tile that way.
    pub infeasible_skipped: usize,
    /// Candidates skipped because the evaluator's static
    /// [`lower_bound`](crate::evaluator::Evaluator::lower_bound) already
    /// exceeded the best measurement — provably not the winner, never run
    /// (zero unless [`Tuner::bound_pruning`] is on and the backend can
    /// bound).
    pub pruned_by_bound: usize,
    /// Size of the *exhaustive* grid under the same bounds, for reduction
    /// accounting.
    pub grid_size: usize,
    /// The exact candidate visit order (deterministic per strategy).
    pub visit_order: Vec<(usize, usize)>,
    /// Every visited configuration with its measurement.
    pub landscape: Vec<TrialRecord>,
}

impl TuneOutcome {
    /// `grid_size / candidates actually measured` — how much cheaper than
    /// brute force this strategy was.
    pub fn reduction(&self) -> f64 {
        self.grid_size as f64 / (self.candidates_visited.max(1)) as f64
    }
}

/// Result of a joint `(P, T, scheduler)` sweep
/// ([`Tuner::tune_schedulers`]): one [`TuneOutcome`] per scheduler plus the
/// globally best triple.
#[derive(Clone, Debug)]
pub struct SchedSweepOutcome {
    /// Best `(P, T)` across every scheduler swept.
    pub winner: (usize, usize),
    /// The scheduler that produced the winner (ties resolve to the earliest
    /// kind in the sweep order, so FIFO wins when scheduling buys nothing).
    pub winner_scheduler: SchedulerKind,
    /// The winner's best observed makespan in seconds.
    pub winner_seconds: f64,
    /// Per-scheduler outcomes, in sweep order.
    pub per_scheduler: Vec<(SchedulerKind, TuneOutcome)>,
}

/// Combine an app's intrinsic [`PipelineCosts`] with a platform description
/// into the closed-form [`PipelineModel`]: the full-device kernel rate is
/// the per-thread rate scaled by the whole card's thread-equivalents
/// (SMT-discounted), and link/launch parameters come straight from the
/// calibration.
pub fn model_from_costs(costs: &PipelineCosts, cfg: &PlatformConfig) -> PipelineModel {
    let plan = PartitionPlan::equal_split(&cfg.device, 1).expect("one partition always fits");
    let device_rate = costs.thread_rate * cfg.compute.partition_capacity(&plan.partitions[0]);
    PipelineModel {
        bytes_h2d: costs.bytes_h2d,
        bytes_d2h: costs.bytes_d2h,
        transfers_per_tile: costs.transfers_per_tile,
        kernel_work: costs.kernel_work,
        device_rate,
        launch_overhead: cfg.compute.launch_overhead.as_secs_f64(),
        link_bandwidth: cfg.link.bandwidth,
        link_latency: cfg.link.latency.as_secs_f64(),
    }
}

/// Candidate visit order for `strategy` — a pure, deterministic function of
/// the inputs (the model prediction is closed-form arithmetic).
pub fn candidate_order(
    app: &dyn Tunable,
    platform: &PlatformConfig,
    bounds: &TuneBounds,
    strategy: Strategy,
) -> Vec<(usize, usize)> {
    match strategy {
        Strategy::Exhaustive => exhaustive_space(bounds).pairs,
        Strategy::Pruned => pruned_space(&platform.device, bounds).pairs,
        Strategy::ModelSeeded => {
            let mut pairs = pruned_space(&platform.device, bounds).pairs;
            if let Some(costs) = app.pipeline_costs() {
                let model = model_from_costs(&costs, platform);
                pairs.sort_by(|&a, &b| {
                    let pa = model.makespan(a.0, a.1);
                    let pb = model.makespan(b.0, b.1);
                    pa.partial_cmp(&pb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
            }
            pairs
        }
    }
}

/// The closed tuning loop: cache + repeat policy + winner tracking.
pub struct Tuner {
    /// Memoized trials, shared across strategies, apps, and schedulers.
    pub cache: MeasurementCache,
    /// Repetition / early-stopping policy.
    pub policy: RepeatPolicy,
    /// DAG scheduler every trial runs under (FIFO by default — the paper's
    /// semantics). [`Tuner::tune_schedulers`] sweeps this as a third
    /// tunable alongside `(P, T)`.
    pub scheduler: SchedulerKind,
    /// Skip candidates whose static makespan lower bound
    /// ([`Evaluator::lower_bound`]) strictly exceeds the best measurement
    /// so far. Because the bound is sound (`bound ≤ measurement`), a
    /// pruned candidate provably cannot beat — or even tie — the
    /// incumbent, so the winner and its ordering are exactly those of the
    /// unpruned sweep. Off by default.
    pub bound_pruning: bool,
}

impl Tuner {
    /// A tuner with an empty cache.
    pub fn new(policy: RepeatPolicy) -> Tuner {
        Tuner {
            cache: MeasurementCache::new(),
            policy,
            scheduler: SchedulerKind::Fifo,
            bound_pruning: false,
        }
    }

    /// Export the tuner's trial/cache activity as a metric snapshot in
    /// the shared [`hstreams::metrics`] shape:
    /// `tune_trials` (cache lookups, i.e. feasible candidates priced),
    /// `tune_cache_hits` / `tune_cache_misses`, and `tune_cached_configs`
    /// (distinct `(app, problem, P, T, scheduler)` entries memoized).
    /// Embedded in the autotune bench JSON's `metrics` block.
    pub fn metrics_snapshot(&self) -> hstreams::MetricsSnapshot {
        use hstreams::metrics::{Labels, Unit};
        let reg = hstreams::MetricsRegistry::new();
        let count = |name: &str, v: usize| {
            reg.counter(name, Unit::Count, Labels::GLOBAL).add(v as u64);
        };
        count("tune_trials", self.cache.hits() + self.cache.misses());
        count("tune_cache_hits", self.cache.hits());
        count("tune_cache_misses", self.cache.misses());
        count("tune_cached_configs", self.cache.len());
        reg.snapshot()
    }

    /// Tune `app` on `eval` over the candidates `strategy` selects within
    /// `bounds`.
    ///
    /// # Panics
    /// Panics if no candidate is feasible for the app.
    pub fn tune(
        &mut self,
        app: &mut dyn Tunable,
        eval: &mut dyn Evaluator,
        platform: &PlatformConfig,
        bounds: &TuneBounds,
        strategy: Strategy,
    ) -> TuneOutcome {
        let order = candidate_order(app, platform, bounds, strategy);
        let grid_size = exhaustive_space(bounds).len();
        eval.set_scheduler(self.scheduler);
        let mut best: Option<((usize, usize), f64)> = None;
        let mut evaluator_calls = 0usize;
        let mut infeasible_skipped = 0usize;
        let mut pruned_by_bound = 0usize;
        let mut visit_order = Vec::new();
        let mut landscape = Vec::new();

        for &(p, t) in &order {
            if !app.feasible(t) {
                infeasible_skipped += 1;
                continue;
            }
            let key = CacheKey {
                app: app.name().to_string(),
                problem: app.problem(),
                partitions: p,
                tiles: t,
                scheduler: self.scheduler,
            };
            let (trial, cached) = match self.cache.lookup(&key) {
                Some(trial) => (trial, true),
                None => {
                    // Static pruning: a candidate whose sound lower bound
                    // already exceeds the best *measurement* cannot win
                    // (strictly worse, so it cannot even tie into the
                    // lexicographic tie-break). Cached trials above stay
                    // free either way.
                    if self.bound_pruning {
                        if let (Some((_, bv)), Some(lb)) = (best, eval.lower_bound(app, p, t)) {
                            if lb > bv {
                                pruned_by_bound += 1;
                                continue;
                            }
                        }
                    }
                    let incumbent = best.map(|(_, v)| v);
                    let Some(trial) =
                        self.measure(app, eval, p, t, incumbent, &mut evaluator_calls)
                    else {
                        // The evaluator refused (run failure): treat like
                        // infeasible, but do not poison the cache.
                        infeasible_skipped += 1;
                        continue;
                    };
                    self.cache.insert(key, trial);
                    (trial, false)
                }
            };
            visit_order.push((p, t));
            landscape.push(TrialRecord {
                partitions: p,
                tiles: t,
                seconds: trial.summary.min,
                hidden_fraction: trial.hidden_fraction,
                reps: trial.summary.n,
                cached,
            });
            let v = trial.summary.min;
            let better = match best {
                None => true,
                Some((bp, bv)) => v < bv || (v == bv && (p, t) < bp),
            };
            if better {
                best = Some(((p, t), v));
            }
        }

        let ((winner, winner_seconds), _) = (best.expect("no feasible candidate in the space"), ());
        TuneOutcome {
            strategy,
            winner,
            winner_seconds,
            evaluator_calls,
            candidates_visited: visit_order.len(),
            infeasible_skipped,
            pruned_by_bound,
            grid_size,
            visit_order,
            landscape,
        }
    }

    /// Tune `(P, T, scheduler)` jointly: run the `(P, T)` sweep once per
    /// scheduler in `kinds` and keep the globally best triple. Trials are
    /// cached per scheduler, so re-sweeping (or mixing with plain
    /// [`tune`](Tuner::tune) calls) never re-measures a configuration. The
    /// tuner's ambient [`scheduler`](Tuner::scheduler) is restored
    /// afterwards.
    ///
    /// # Panics
    /// Panics if `kinds` is empty or no candidate is feasible for the app.
    pub fn tune_schedulers(
        &mut self,
        app: &mut dyn Tunable,
        eval: &mut dyn Evaluator,
        platform: &PlatformConfig,
        bounds: &TuneBounds,
        strategy: Strategy,
        kinds: &[SchedulerKind],
    ) -> SchedSweepOutcome {
        assert!(!kinds.is_empty(), "scheduler sweep needs at least one kind");
        let ambient = self.scheduler;
        let mut per_scheduler = Vec::with_capacity(kinds.len());
        let mut best: Option<(SchedulerKind, (usize, usize), f64)> = None;
        for &kind in kinds {
            self.scheduler = kind;
            let out = self.tune(app, eval, platform, bounds, strategy);
            if best.is_none_or(|(_, _, bv)| out.winner_seconds < bv) {
                best = Some((kind, out.winner, out.winner_seconds));
            }
            per_scheduler.push((kind, out));
        }
        self.scheduler = ambient;
        let (winner_scheduler, winner, winner_seconds) = best.expect("kinds is non-empty");
        SchedSweepOutcome {
            winner,
            winner_scheduler,
            winner_seconds,
            per_scheduler,
        }
    }

    /// Repeat one candidate per the policy, stopping early once it is
    /// confidently worse than `incumbent`.
    fn measure(
        &self,
        app: &mut dyn Tunable,
        eval: &mut dyn Evaluator,
        p: usize,
        t: usize,
        incumbent: Option<f64>,
        evaluator_calls: &mut usize,
    ) -> Option<Trial> {
        let mut secs = Vec::with_capacity(self.policy.max_reps);
        let mut hidden = Vec::with_capacity(self.policy.max_reps);
        loop {
            let m = eval.evaluate(app, p, t)?;
            *evaluator_calls += 1;
            secs.push(m.seconds);
            hidden.push(m.hidden_fraction);
            if secs.len() >= self.policy.max_reps {
                break;
            }
            if secs.len() >= self.policy.min_reps {
                if let Some(inc) = incumbent {
                    let s = Summary::of(&secs).expect("non-empty");
                    let sem = s.stddev / (s.n as f64).sqrt();
                    if s.mean - self.policy.z * sem > inc {
                        break; // confidently worse than the incumbent
                    }
                }
            }
        }
        Some(Trial {
            summary: Summary::of(&secs).expect("non-empty"),
            hidden_fraction: hidden.iter().sum::<f64>() / hidden.len() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Measurement;

    /// The scripted evaluators' closed-form landscape.
    fn synthetic_price(p: usize, t: usize) -> f64 {
        let misaligned = if 56 % p == 0 { 0.0 } else { 5.0 };
        let idle = if t.is_multiple_of(p) { 0.0 } else { 3.0 };
        (p as f64 - 8.0).abs() + (t as f64 - 16.0).abs() * 0.1 + misaligned + idle
    }

    /// Scripted evaluator: prices candidates from a closed form and counts
    /// calls, no simulator involved.
    struct Scripted {
        calls: usize,
        noise: Vec<f64>,
        next: usize,
    }

    impl Scripted {
        fn new() -> Scripted {
            Scripted {
                calls: 0,
                noise: vec![0.0],
                next: 0,
            }
        }
    }

    impl Evaluator for Scripted {
        fn backend(&self) -> &'static str {
            "scripted"
        }

        fn evaluate(&mut self, _: &mut dyn Tunable, p: usize, t: usize) -> Option<Measurement> {
            self.calls += 1;
            let n = self.noise[self.next % self.noise.len()];
            self.next += 1;
            Some(Measurement {
                seconds: synthetic_price(p, t) + n,
                hidden_fraction: 0.5,
            })
        }
    }

    struct AnyApp;

    impl Tunable for AnyApp {
        fn name(&self) -> &'static str {
            "any"
        }
        fn problem(&self) -> String {
            "unit".into()
        }
        fn overlappable(&self) -> bool {
            true
        }
        fn feasible(&self, _: usize) -> bool {
            true
        }
        fn record(
            &mut self,
            _: &mut hstreams::context::Context,
            _: usize,
        ) -> hstreams::types::Result<()> {
            Ok(())
        }
        fn pipeline_costs(&self) -> Option<PipelineCosts> {
            None
        }
    }

    fn bounds() -> TuneBounds {
        TuneBounds {
            max_partitions: 16,
            max_tiles: 32,
            max_multiple: 4,
        }
    }

    #[test]
    fn pruned_matches_exhaustive_on_synthetic_landscape() {
        let platform = PlatformConfig::phi_31sp();
        let mut tuner = Tuner::new(RepeatPolicy::sim());
        let full = tuner.tune(
            &mut AnyApp,
            &mut Scripted::new(),
            &platform,
            &bounds(),
            Strategy::Exhaustive,
        );
        let mut tuner2 = Tuner::new(RepeatPolicy::sim());
        let pruned = tuner2.tune(
            &mut AnyApp,
            &mut Scripted::new(),
            &platform,
            &bounds(),
            Strategy::Pruned,
        );
        assert_eq!(full.winner, (8, 16));
        assert_eq!(pruned.winner, (8, 16));
        assert!(pruned.candidates_visited * 8 <= full.candidates_visited);
        assert_eq!(full.grid_size, pruned.grid_size);
    }

    #[test]
    fn cache_serves_repeat_visits_with_zero_calls() {
        let platform = PlatformConfig::phi_31sp();
        let mut tuner = Tuner::new(RepeatPolicy::sim());
        let mut eval = Scripted::new();
        let first = tuner.tune(
            &mut AnyApp,
            &mut eval,
            &platform,
            &bounds(),
            Strategy::Pruned,
        );
        let calls_after_first = eval.calls;
        let second = tuner.tune(
            &mut AnyApp,
            &mut eval,
            &platform,
            &bounds(),
            Strategy::Pruned,
        );
        assert_eq!(eval.calls, calls_after_first, "second pass fully cached");
        assert_eq!(second.evaluator_calls, 0);
        assert_eq!(first.winner, second.winner);
        assert!(second.landscape.iter().all(|r| r.cached));
        assert_eq!(tuner.cache.hits(), first.candidates_visited);
    }

    #[test]
    fn metrics_snapshot_reflects_cache_activity() {
        let platform = PlatformConfig::phi_31sp();
        let mut tuner = Tuner::new(RepeatPolicy::sim());
        let mut eval = Scripted::new();
        tuner.tune(
            &mut AnyApp,
            &mut eval,
            &platform,
            &bounds(),
            Strategy::Pruned,
        );
        tuner.tune(
            &mut AnyApp,
            &mut eval,
            &platform,
            &bounds(),
            Strategy::Pruned,
        );
        let snap = tuner.metrics_snapshot();
        let hits = snap.counter_sum("tune_cache_hits");
        let misses = snap.counter_sum("tune_cache_misses");
        assert_eq!(snap.counter_sum("tune_trials"), hits + misses);
        assert!(hits > 0, "second pass should hit the cache");
        assert_eq!(misses, tuner.cache.len() as u64);
        assert_eq!(
            snap.counter_sum("tune_cached_configs"),
            tuner.cache.len() as u64
        );
    }

    #[test]
    fn deterministic_winner_and_visit_order() {
        let platform = PlatformConfig::phi_31sp();
        let run = || {
            let mut tuner = Tuner::new(RepeatPolicy::sim());
            tuner.tune(
                &mut AnyApp,
                &mut Scripted::new(),
                &platform,
                &bounds(),
                Strategy::Pruned,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.visit_order, b.visit_order);
    }

    #[test]
    fn equal_values_resolve_to_lex_smallest_pair() {
        struct Flat;
        impl Evaluator for Flat {
            fn backend(&self) -> &'static str {
                "flat"
            }
            fn evaluate(&mut self, _: &mut dyn Tunable, _: usize, _: usize) -> Option<Measurement> {
                Some(Measurement {
                    seconds: 1.0,
                    hidden_fraction: 0.0,
                })
            }
        }
        let platform = PlatformConfig::phi_31sp();
        let mut tuner = Tuner::new(RepeatPolicy::sim());
        let out = tuner.tune(
            &mut AnyApp,
            &mut Flat,
            &platform,
            &bounds(),
            Strategy::Pruned,
        );
        let lex_min = *out.visit_order.iter().min().unwrap();
        assert_eq!(out.winner, lex_min);
    }

    #[test]
    fn early_stopping_prunes_confidently_worse_candidates() {
        let platform = PlatformConfig::phi_31sp();
        let policy = RepeatPolicy {
            min_reps: 2,
            max_reps: 5,
            z: 1.96,
        };
        let mut tuner = Tuner::new(policy);
        let mut eval = Scripted::new(); // zero noise: intervals are points
        let out = tuner.tune(
            &mut AnyApp,
            &mut eval,
            &platform,
            &bounds(),
            Strategy::Pruned,
        );
        // Walk the visit order tracking the incumbent: with zero noise a
        // candidate worse than the incumbent it faced must stop at
        // min_reps, while incumbent-beating candidates run the full budget.
        let mut incumbent = f64::INFINITY;
        let mut pruned_any = false;
        for r in &out.landscape {
            if r.seconds > incumbent {
                assert_eq!(
                    r.reps, policy.min_reps,
                    "worse candidate kept sampling: {r:?}"
                );
                pruned_any = true;
            } else {
                assert_eq!(
                    r.reps, policy.max_reps,
                    "new incumbent stopped early: {r:?}"
                );
                incumbent = r.seconds;
            }
        }
        assert!(pruned_any, "landscape should contain pruned candidates");
    }

    #[test]
    fn bound_pruning_preserves_the_winner_and_skips_provable_losers() {
        /// Scripted evaluator with a *sound* static bound: 90 % of the
        /// true price (counts bound queries separately from runs).
        struct Bounded {
            runs: usize,
            bounds: usize,
        }
        impl Evaluator for Bounded {
            fn backend(&self) -> &'static str {
                "bounded"
            }
            fn evaluate(&mut self, _: &mut dyn Tunable, p: usize, t: usize) -> Option<Measurement> {
                self.runs += 1;
                Some(Measurement {
                    seconds: synthetic_price(p, t),
                    hidden_fraction: 0.5,
                })
            }
            fn lower_bound(&mut self, _: &mut dyn Tunable, p: usize, t: usize) -> Option<f64> {
                self.bounds += 1;
                Some(synthetic_price(p, t) * 0.9)
            }
        }

        let platform = PlatformConfig::phi_31sp();
        let baseline = Tuner::new(RepeatPolicy::sim()).tune(
            &mut AnyApp,
            &mut Bounded { runs: 0, bounds: 0 },
            &platform,
            &bounds(),
            Strategy::Exhaustive,
        );
        assert_eq!(baseline.pruned_by_bound, 0, "pruning is opt-in");

        let mut tuner = Tuner::new(RepeatPolicy::sim());
        tuner.bound_pruning = true;
        let mut eval = Bounded { runs: 0, bounds: 0 };
        let pruned = tuner.tune(
            &mut AnyApp,
            &mut eval,
            &platform,
            &bounds(),
            Strategy::Exhaustive,
        );
        assert_eq!(
            pruned.winner, baseline.winner,
            "pruning must not move the winner"
        );
        assert_eq!(pruned.winner_seconds, baseline.winner_seconds);
        assert!(pruned.pruned_by_bound > 0, "landscape has provable losers");
        assert!(
            eval.runs < baseline.candidates_visited,
            "pruned candidates must not be run: {} runs vs {} visited",
            eval.runs,
            baseline.candidates_visited
        );
        assert_eq!(
            pruned.candidates_visited + pruned.pruned_by_bound + pruned.infeasible_skipped,
            baseline.candidates_visited + baseline.infeasible_skipped,
            "every candidate is accounted for"
        );
        // Measured candidates keep the visit order of the unpruned sweep
        // (pruning deletes entries, never reorders).
        let mut it = baseline.visit_order.iter();
        for v in &pruned.visit_order {
            assert!(
                it.any(|b| b == v),
                "pruned visit order is a subsequence of the baseline"
            );
        }
    }

    /// Scripted evaluator whose landscape depends on the scheduler the
    /// tuner selected: HEFT shaves a constant off every candidate, work
    /// stealing a smaller one.
    struct SchedScripted {
        calls: usize,
        kind: SchedulerKind,
    }

    impl Evaluator for SchedScripted {
        fn backend(&self) -> &'static str {
            "sched-scripted"
        }

        fn evaluate(&mut self, _: &mut dyn Tunable, p: usize, t: usize) -> Option<Measurement> {
            self.calls += 1;
            let sched_bonus = match self.kind {
                SchedulerKind::Fifo => 2.0,
                SchedulerKind::ListHeft => 0.0,
                SchedulerKind::WorkSteal => 1.0,
            };
            Some(Measurement {
                seconds: 10.0
                    + (p as f64 - 8.0).abs()
                    + (t as f64 - 16.0).abs() * 0.1
                    + sched_bonus,
                hidden_fraction: 0.5,
            })
        }

        fn set_scheduler(&mut self, kind: SchedulerKind) {
            self.kind = kind;
        }
    }

    #[test]
    fn scheduler_sweep_picks_the_best_kind_and_caches_per_scheduler() {
        let platform = PlatformConfig::phi_31sp();
        let mut tuner = Tuner::new(RepeatPolicy::sim());
        let mut eval = SchedScripted {
            calls: 0,
            kind: SchedulerKind::Fifo,
        };
        let kinds = SchedulerKind::all();
        let out = tuner.tune_schedulers(
            &mut AnyApp,
            &mut eval,
            &platform,
            &bounds(),
            Strategy::Pruned,
            &kinds,
        );
        assert_eq!(out.winner_scheduler, SchedulerKind::ListHeft);
        assert_eq!(out.winner, (8, 16));
        assert_eq!(out.per_scheduler.len(), 3);
        // Each scheduler's sweep measured the same candidates at different
        // prices: FIFO's winner is exactly the HEFT winner plus its bonus.
        let fifo = &out.per_scheduler[0].1;
        let heft = &out.per_scheduler[1].1;
        assert_eq!(fifo.winner, heft.winner);
        assert!((fifo.winner_seconds - heft.winner_seconds - 2.0).abs() < 1e-12);
        assert_eq!(tuner.scheduler, SchedulerKind::Fifo, "ambient restored");
        // Trials are cached per scheduler: a re-sweep costs zero calls.
        let calls = eval.calls;
        let again = tuner.tune_schedulers(
            &mut AnyApp,
            &mut eval,
            &platform,
            &bounds(),
            Strategy::Pruned,
            &kinds,
        );
        assert_eq!(eval.calls, calls, "re-sweep fully cache-served");
        assert_eq!(again.winner_scheduler, out.winner_scheduler);
        assert_eq!(again.winner_seconds, out.winner_seconds);
    }

    #[test]
    fn scheduler_tie_resolves_to_earliest_kind() {
        // The plain Scripted evaluator ignores set_scheduler, so every
        // scheduler prices identically — FIFO (first in the sweep) must win.
        let platform = PlatformConfig::phi_31sp();
        let mut tuner = Tuner::new(RepeatPolicy::sim());
        let out = tuner.tune_schedulers(
            &mut AnyApp,
            &mut Scripted::new(),
            &platform,
            &bounds(),
            Strategy::Pruned,
            &SchedulerKind::all(),
        );
        assert_eq!(out.winner_scheduler, SchedulerKind::Fifo);
        assert_eq!(out.winner, (8, 16));
    }

    #[test]
    fn model_seeded_order_visits_predicted_best_first() {
        struct Pipelined;
        impl Tunable for Pipelined {
            fn name(&self) -> &'static str {
                "pipe"
            }
            fn problem(&self) -> String {
                "unit".into()
            }
            fn overlappable(&self) -> bool {
                true
            }
            fn feasible(&self, _: usize) -> bool {
                true
            }
            fn record(
                &mut self,
                _: &mut hstreams::context::Context,
                _: usize,
            ) -> hstreams::types::Result<()> {
                Ok(())
            }
            fn pipeline_costs(&self) -> Option<PipelineCosts> {
                Some(PipelineCosts {
                    bytes_h2d: 64.0 * (1 << 20) as f64,
                    bytes_d2h: 64.0 * (1 << 20) as f64,
                    transfers_per_tile: 2.0,
                    kernel_work: 1e9,
                    thread_rate: 0.32e9,
                })
            }
        }
        let platform = PlatformConfig::phi_31sp();
        let order = candidate_order(&Pipelined, &platform, &bounds(), Strategy::ModelSeeded);
        let pruned = candidate_order(&Pipelined, &platform, &bounds(), Strategy::Pruned);
        assert_eq!(
            {
                let mut o = order.clone();
                o.sort_unstable();
                o
            },
            {
                let mut p = pruned.clone();
                p.sort_unstable();
                p
            },
            "model seeding reorders, never adds or drops candidates"
        );
        let costs = Pipelined.pipeline_costs().unwrap();
        let model = model_from_costs(&costs, &platform);
        let first = order[0];
        let best_pred = order
            .iter()
            .map(|&(p, t)| model.makespan(p, t))
            .fold(f64::INFINITY, f64::min);
        assert!((model.makespan(first.0, first.1) - best_pred).abs() < 1e-12);
        // Modelless apps keep the pruned order.
        let fallback = candidate_order(&AnyApp, &platform, &bounds(), Strategy::ModelSeeded);
        assert_eq!(
            fallback,
            candidate_order(&AnyApp, &platform, &bounds(), Strategy::Pruned)
        );
    }
}
