//! Measurement cache keyed by `(app, problem, P, T, scheduler)`.
//!
//! Tuning sweeps revisit configurations constantly — three strategies over
//! the same grid, a re-run with different bounds, the incumbent re-checked
//! by a differential test. On the native evaluator every revisit is seconds
//! of wall time, so aggregated trial results are memoized here: a hit
//! returns the stored summary and performs **zero** evaluator calls (the
//! parity smoke test asserts exactly that via [`MeasurementCache::hits`]).

use std::collections::HashMap;

use micsim::stats::Summary;

/// Identity of one measured configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// App identifier ([`Tunable::name`](mic_apps::tunable::Tunable::name)).
    pub app: String,
    /// Problem-size description
    /// ([`Tunable::problem`](mic_apps::tunable::Tunable::problem)).
    pub problem: String,
    /// Resource granularity `P`.
    pub partitions: usize,
    /// Task granularity `T`.
    pub tiles: usize,
    /// DAG scheduler the trial ran under — the same `(P, T)` can cost very
    /// different makespans under FIFO vs HEFT, so it is part of the identity.
    pub scheduler: hstreams::SchedulerKind,
}

/// Aggregated result of one configuration's repetitions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Trial {
    /// Summary over the retained seconds samples.
    pub summary: Summary,
    /// Mean hidden fraction across the samples.
    pub hidden_fraction: f64,
}

/// Memoized trials with hit/miss accounting.
#[derive(Default)]
pub struct MeasurementCache {
    map: HashMap<CacheKey, Trial>,
    hits: usize,
    misses: usize,
}

impl MeasurementCache {
    /// Empty cache.
    pub fn new() -> MeasurementCache {
        MeasurementCache::default()
    }

    /// Look up a configuration, counting the access as a hit or miss.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Trial> {
        match self.map.get(key) {
            Some(t) => {
                self.hits += 1;
                Some(*t)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a freshly measured trial.
    pub fn insert(&mut self, key: CacheKey, trial: Trial) {
        self.map.insert(key, trial);
    }

    /// Accesses served from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Accesses that required a real measurement.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Distinct configurations stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: usize, t: usize) -> CacheKey {
        CacheKey {
            app: "hbench".into(),
            problem: "elems=1024".into(),
            partitions: p,
            tiles: t,
            scheduler: hstreams::SchedulerKind::Fifo,
        }
    }

    fn trial(mean: f64) -> Trial {
        Trial {
            summary: Summary::of(&[mean]).unwrap(),
            hidden_fraction: 0.5,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = MeasurementCache::new();
        assert!(cache.lookup(&key(2, 4)).is_none());
        cache.insert(key(2, 4), trial(1.0));
        assert_eq!(cache.lookup(&key(2, 4)).unwrap().summary.mean, 1.0);
        assert!(cache.lookup(&key(2, 8)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn key_distinguishes_problem_sizes() {
        let mut cache = MeasurementCache::new();
        cache.insert(key(2, 4), trial(1.0));
        let other = CacheKey {
            problem: "elems=2048".into(),
            ..key(2, 4)
        };
        assert!(cache.lookup(&other).is_none());
    }

    #[test]
    fn key_distinguishes_schedulers() {
        let mut cache = MeasurementCache::new();
        cache.insert(key(2, 4), trial(1.0));
        let heft = CacheKey {
            scheduler: hstreams::SchedulerKind::ListHeft,
            ..key(2, 4)
        };
        assert!(cache.lookup(&heft).is_none());
        cache.insert(heft.clone(), trial(0.5));
        assert_eq!(cache.lookup(&heft).unwrap().summary.mean, 0.5);
        assert_eq!(cache.lookup(&key(2, 4)).unwrap().summary.mean, 1.0);
        assert_eq!(cache.len(), 2);
    }
}
