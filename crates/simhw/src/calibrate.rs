//! Calibrated platform presets.
//!
//! [`PlatformConfig`] bundles everything the stream executor needs to price
//! a run: the device spec, the link model, the compute model, and the
//! host-side runtime overheads. The `phi_31sp` preset is calibrated to the
//! constants the paper itself reports:
//!
//! * Fig. 5 — 16 × 1 MB one-way ≈ 2.5 ms, 32 blocks ≈ 5.2 ms ⇒ ~7 GB/s
//!   effective bandwidth, ~15 µs per-transfer latency, **serial duplex**;
//! * Fig. 6 — the hBench kernel (4 Mi f32 elements) crosses the 32 MiB
//!   two-way transfer time at 40 iterations ⇒ ≈ 32 G element-iterations/s
//!   full-device, i.e. ≈ 0.32 G/s per thread at 100.8 thread-equivalents;
//! * 57 cores, 1 reserved ⇒ 224 usable threads (Sec. V-B1);
//! * kernel-launch and stream-management overheads in the tens of
//!   microseconds, the usual MPSS/hStreams figures, sized so Fig. 7's and
//!   Fig. 10's overhead-driven tails appear at the paper's positions.

use crate::compute::{ComputeModel, SmtScaling};
use crate::device::DeviceSpec;
use crate::pcie::{Duplex, LinkModel};
use crate::time::SimDuration;

/// Complete timing description of one heterogeneous platform.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformConfig {
    /// Card description (all cards are identical).
    pub device: DeviceSpec,
    /// Number of cards attached to the host.
    pub device_count: usize,
    /// PCIe model (each card has its own link).
    pub link: LinkModel,
    /// Kernel cost model.
    pub compute: ComputeModel,
    /// Host-side cost of enqueuing one action into a stream.
    pub enqueue_overhead: SimDuration,
    /// Fixed cost of a stream/device synchronization point.
    pub sync_overhead: SimDuration,
    /// Additional synchronization cost **per participating stream**: the
    /// host runtime joins every stream individually, so barriers get more
    /// expensive as the stream count grows (this is part of the "management
    /// overhead" the paper blames for the right-hand tails of Figs. 7/9).
    pub sync_per_stream: SimDuration,
    /// Extra cost of a synchronization that spans streams on *different*
    /// cards (Sec. VI: multi-MIC sync is more expensive).
    pub cross_device_sync: SimDuration,
    /// One-time cost per created partition (hStreams partition setup).
    pub partition_setup: SimDuration,
    /// Host CPU compute capacity in device thread-equivalents: a kernel of
    /// rate `r` executed host-side runs at `r × host_equivalents`. The
    /// dual-socket 12-core Xeon of the paper's platform is worth roughly 20
    /// KNC thread-equivalents on latency-bound tile kernels.
    pub host_equivalents: f64,
}

impl PlatformConfig {
    /// The paper's platform: dual-socket Xeon host + Intel Xeon Phi 31SP.
    pub fn phi_31sp() -> PlatformConfig {
        PlatformConfig {
            device: DeviceSpec::phi_31sp(),
            device_count: 1,
            link: LinkModel::new(SimDuration::from_micros(15), 7.0e9, Duplex::Serial),
            compute: ComputeModel {
                launch_overhead: SimDuration::from_micros(60),
                smt: SmtScaling::default(),
                core_sharing_factor: 0.50,
                threads_per_core: DeviceSpec::phi_31sp().threads_per_core,
            },
            enqueue_overhead: SimDuration::from_micros(3),
            sync_overhead: SimDuration::from_micros(25),
            sync_per_stream: SimDuration::from_micros(15),
            cross_device_sync: SimDuration::from_micros(120),
            partition_setup: SimDuration::from_micros(40),
            host_equivalents: 20.0,
        }
    }

    /// The same host with a Xeon Phi 7120 card (61 cores, 16 GB): a
    /// what-if platform for generality checks — everything downstream must
    /// derive its candidate sets from the device, not from "56".
    pub fn phi_7120() -> PlatformConfig {
        let mut cfg = PlatformConfig::phi_31sp();
        cfg.device = DeviceSpec::phi_7120();
        cfg.compute.threads_per_core = cfg.device.threads_per_core;
        cfg
    }

    /// Same platform with `n` Phi cards (Sec. VI experiments).
    pub fn phi_31sp_multi(n: usize) -> PlatformConfig {
        let mut cfg = PlatformConfig::phi_31sp();
        cfg.device_count = n.max(1);
        cfg
    }

    /// An idealized full-duplex variant, used by ablation benches to show
    /// what Fig. 5 would look like on a GPU-style link.
    pub fn phi_31sp_full_duplex() -> PlatformConfig {
        let mut cfg = PlatformConfig::phi_31sp();
        cfg.link.duplex = Duplex::Full;
        cfg
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.device.validate()?;
        if self.device_count == 0 {
            return Err("platform needs at least one device".into());
        }
        if !(0.0..=1.0).contains(&self.compute.core_sharing_factor) {
            return Err("core_sharing_factor must be in 0..=1".into());
        }
        if self.host_equivalents <= 0.0 {
            return Err("host_equivalents must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{KernelInvocation, KernelProfile};
    use crate::partition::PartitionPlan;

    #[test]
    fn preset_validates() {
        PlatformConfig::phi_31sp().validate().unwrap();
        PlatformConfig::phi_31sp_multi(4).validate().unwrap();
        PlatformConfig::phi_31sp_full_duplex().validate().unwrap();
    }

    #[test]
    fn phi_7120_preset_validates() {
        let cfg = PlatformConfig::phi_7120();
        cfg.validate().unwrap();
        assert_eq!(cfg.device.usable_threads(), 240);
    }

    #[test]
    fn multi_clamps_to_one() {
        assert_eq!(PlatformConfig::phi_31sp_multi(0).device_count, 1);
        assert_eq!(PlatformConfig::phi_31sp_multi(2).device_count, 2);
    }

    #[test]
    fn fig6_crossover_calibration() {
        // hBench: arrays A and B are 16 MiB each => two-way transfer of
        // 32 MiB ≈ 5.2 ms on the serial link. The kernel at 40 iterations
        // over 4 Mi elements should take about the same.
        let cfg = PlatformConfig::phi_31sp();
        let transfer = cfg.link.transfer_time(16 << 20) * 2;
        let t_ms = transfer.as_millis_f64();
        assert!((t_ms - 5.2).abs() < 0.5, "two-way transfer {t_ms} ms");

        // 0.32e9 el-it/s/thread at 100.8 thread-equivalents.
        let profile = KernelProfile::streaming("hbench", 0.32e9);
        let plan = PartitionPlan::equal_split(&cfg.device, 1).unwrap();
        let elements = 4.0 * 1024.0 * 1024.0;
        let inv = KernelInvocation {
            profile: &profile,
            work: elements * 40.0,
        };
        let kt = cfg.compute.kernel_time(&inv, &plan.partitions[0]).unwrap();
        let k_ms = kt.as_millis_f64();
        assert!(
            (k_ms - t_ms).abs() / t_ms < 0.15,
            "kernel at 40 iters ({k_ms} ms) should cross transfer time ({t_ms} ms)"
        );
    }

    #[test]
    fn validation_rejects_bad_sharing_factor() {
        let mut cfg = PlatformConfig::phi_31sp();
        cfg.compute.core_sharing_factor = 1.5;
        assert!(cfg.validate().is_err());
    }
}
