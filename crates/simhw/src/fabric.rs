//! Multi-card platform state.
//!
//! Holds the mutable, per-card runtime state of a simulation: device memory
//! book-keeping and the active partition plan of each card. The paper's
//! Sec. VI experiments run one logical stream pool over several Phis; the
//! stream executor asks this type which card a partition lives on and what
//! its geometry is.

use crate::calibrate::PlatformConfig;
use crate::device::DeviceId;
use crate::memory::{AllocId, DeviceMemory, MemError};
use crate::partition::{PartitionError, PartitionPlan};

/// Mutable state for one card.
#[derive(Debug)]
pub struct CardState {
    /// Which card this is.
    pub id: DeviceId,
    /// Device memory tracker.
    pub memory: DeviceMemory,
    /// Active partition plan, once a context initialized the card.
    pub plan: Option<PartitionPlan>,
}

/// Errors from platform-level operations.
#[derive(Clone, Debug, PartialEq)]
pub enum FabricError {
    /// Device id out of range for this platform.
    NoSuchDevice(DeviceId),
    /// Partitioning failed.
    Partition(PartitionError),
    /// Memory operation failed.
    Memory(MemError),
    /// Operation needs a partition plan but the card was never initialized.
    NotInitialized(DeviceId),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::NoSuchDevice(d) => write!(f, "no such device {d}"),
            FabricError::Partition(e) => write!(f, "partitioning failed: {e}"),
            FabricError::Memory(e) => write!(f, "device memory error: {e}"),
            FabricError::NotInitialized(d) => write!(f, "device {d} not initialized"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<PartitionError> for FabricError {
    fn from(e: PartitionError) -> Self {
        FabricError::Partition(e)
    }
}

impl From<MemError> for FabricError {
    fn from(e: MemError) -> Self {
        FabricError::Memory(e)
    }
}

/// The runtime state of all cards on the platform.
#[derive(Debug)]
pub struct SimPlatform {
    cfg: PlatformConfig,
    cards: Vec<CardState>,
}

impl SimPlatform {
    /// Instantiate from a validated configuration.
    pub fn new(cfg: PlatformConfig) -> Result<SimPlatform, String> {
        cfg.validate()?;
        let cards = (0..cfg.device_count)
            .map(|i| CardState {
                id: DeviceId(i),
                memory: DeviceMemory::new(cfg.device.memory_bytes),
                plan: None,
            })
            .collect();
        Ok(SimPlatform { cfg, cards })
    }

    /// The static configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// Number of cards.
    pub fn device_count(&self) -> usize {
        self.cards.len()
    }

    /// All device ids.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.cards.iter().map(|c| c.id)
    }

    fn card(&self, dev: DeviceId) -> Result<&CardState, FabricError> {
        self.cards.get(dev.0).ok_or(FabricError::NoSuchDevice(dev))
    }

    fn card_mut(&mut self, dev: DeviceId) -> Result<&mut CardState, FabricError> {
        self.cards
            .get_mut(dev.0)
            .ok_or(FabricError::NoSuchDevice(dev))
    }

    /// Install an equal-split partition plan with `partitions` groups on
    /// `dev`, replacing any previous plan.
    pub fn init_partitions(
        &mut self,
        dev: DeviceId,
        partitions: usize,
    ) -> Result<&PartitionPlan, FabricError> {
        let spec = self.cfg.device.clone();
        let card = self.card_mut(dev)?;
        card.plan = Some(PartitionPlan::equal_split(&spec, partitions)?);
        Ok(card.plan.as_ref().expect("just installed"))
    }

    /// The active plan on `dev`.
    pub fn plan(&self, dev: DeviceId) -> Result<&PartitionPlan, FabricError> {
        self.card(dev)?
            .plan
            .as_ref()
            .ok_or(FabricError::NotInitialized(dev))
    }

    /// Allocate device memory on `dev`.
    pub fn alloc(&mut self, dev: DeviceId, bytes: u64) -> Result<AllocId, FabricError> {
        Ok(self.card_mut(dev)?.memory.alloc(bytes)?)
    }

    /// Free device memory on `dev`.
    pub fn dealloc(&mut self, dev: DeviceId, id: AllocId) -> Result<(), FabricError> {
        Ok(self.card_mut(dev)?.memory.dealloc(id)?)
    }

    /// Memory tracker of `dev` (read-only).
    pub fn memory(&self, dev: DeviceId) -> Result<&DeviceMemory, FabricError> {
        Ok(&self.card(dev)?.memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::PlatformConfig;

    #[test]
    fn platform_creates_one_card_per_device() {
        let p = SimPlatform::new(PlatformConfig::phi_31sp_multi(3)).unwrap();
        assert_eq!(p.device_count(), 3);
        assert_eq!(p.devices().count(), 3);
    }

    #[test]
    fn partitions_are_per_card() {
        let mut p = SimPlatform::new(PlatformConfig::phi_31sp_multi(2)).unwrap();
        p.init_partitions(DeviceId(0), 4).unwrap();
        p.init_partitions(DeviceId(1), 8).unwrap();
        assert_eq!(p.plan(DeviceId(0)).unwrap().count(), 4);
        assert_eq!(p.plan(DeviceId(1)).unwrap().count(), 8);
    }

    #[test]
    fn uninitialized_card_has_no_plan() {
        let p = SimPlatform::new(PlatformConfig::phi_31sp()).unwrap();
        assert_eq!(
            p.plan(DeviceId(0)),
            Err(FabricError::NotInitialized(DeviceId(0)))
        );
    }

    #[test]
    fn bad_device_id_rejected() {
        let mut p = SimPlatform::new(PlatformConfig::phi_31sp()).unwrap();
        assert!(matches!(
            p.init_partitions(DeviceId(5), 2),
            Err(FabricError::NoSuchDevice(_))
        ));
        assert!(matches!(
            p.alloc(DeviceId(5), 16),
            Err(FabricError::NoSuchDevice(_))
        ));
    }

    #[test]
    fn memory_is_isolated_between_cards() {
        let mut p = SimPlatform::new(PlatformConfig::phi_31sp_multi(2)).unwrap();
        let cap = p.memory(DeviceId(0)).unwrap().capacity();
        p.alloc(DeviceId(0), cap).unwrap();
        // Card 1 must still have room.
        assert!(p.alloc(DeviceId(1), cap).is_ok());
        // Card 0 is full.
        assert!(matches!(
            p.alloc(DeviceId(0), 1),
            Err(FabricError::Memory(_))
        ));
    }

    #[test]
    fn partition_error_propagates() {
        let mut p = SimPlatform::new(PlatformConfig::phi_31sp()).unwrap();
        assert!(matches!(
            p.init_partitions(DeviceId(0), 0),
            Err(FabricError::Partition(_))
        ));
    }
}
