//! The coprocessor device model.
//!
//! Models an Intel Xeon Phi "Knights Corner" style card: `total_cores`
//! in-order cores with `threads_per_core` hardware threads each. One core is
//! reserved for the card's embedded OS (the uOS), exactly as on the 31SP the
//! paper uses: 57 physical cores, 56 usable, 4 threads/core ⇒ 224 usable
//! hardware threads.

use std::fmt;

/// Identifies one coprocessor card on the platform.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mic{}", self.0)
    }
}

/// Static description of one coprocessor card.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Physical cores on the die (including the uOS-reserved one).
    pub total_cores: usize,
    /// Cores reserved for the embedded OS and unavailable to offload work.
    pub reserved_cores: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Device memory capacity in bytes (GDDR on a real card).
    pub memory_bytes: u64,
}

impl DeviceSpec {
    /// The Xeon Phi 31SP used in the paper: 57 cores, 1 reserved for the
    /// uOS, 4 threads/core, 8 GB GDDR5.
    pub fn phi_31sp() -> DeviceSpec {
        DeviceSpec {
            total_cores: 57,
            reserved_cores: 1,
            threads_per_core: 4,
            memory_bytes: 8 * (1 << 30),
        }
    }

    /// The larger Xeon Phi 7120 (61 cores, 1 reserved, 16 GB) — a second
    /// real KNC part, used to check that nothing hard-codes the 31SP's
    /// geometry (its core-aligned partition set differs: divisors of 60).
    pub fn phi_7120() -> DeviceSpec {
        DeviceSpec {
            total_cores: 61,
            reserved_cores: 1,
            threads_per_core: 4,
            memory_bytes: 16 * (1 << 30),
        }
    }

    /// A small synthetic device, handy for tests where 224 threads is noise.
    pub fn tiny(cores: usize, threads_per_core: usize) -> DeviceSpec {
        DeviceSpec {
            total_cores: cores + 1,
            reserved_cores: 1,
            threads_per_core,
            memory_bytes: 1 << 30,
        }
    }

    /// Cores available to offloaded work.
    pub fn usable_cores(&self) -> usize {
        self.total_cores.saturating_sub(self.reserved_cores)
    }

    /// Hardware threads available to offloaded work
    /// (224 on the 31SP: 56 cores × 4 threads).
    pub fn usable_threads(&self) -> usize {
        self.usable_cores() * self.threads_per_core
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_cores == 0 {
            return Err("device must have at least one core".into());
        }
        if self.reserved_cores >= self.total_cores {
            return Err(format!(
                "all {} cores reserved; nothing usable",
                self.total_cores
            ));
        }
        if self.threads_per_core == 0 {
            return Err("threads_per_core must be positive".into());
        }
        Ok(())
    }

    /// The Sec. V-C candidate set for the number of partitions: divisors of
    /// the usable core count. Such `P` values keep every partition on whole
    /// cores, so no two streams share a core's cache.
    ///
    /// For the 31SP this is `{1, 2, 4, 7, 8, 14, 28, 56}`; the paper quotes
    /// the set without the trivial `P = 1`.
    pub fn core_aligned_partition_counts(&self) -> Vec<usize> {
        let n = self.usable_cores();
        let mut divs: Vec<usize> = (1..=n).filter(|p| n.is_multiple_of(*p)).collect();
        divs.sort_unstable();
        divs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_31sp_matches_paper_numbers() {
        let d = DeviceSpec::phi_31sp();
        assert_eq!(d.usable_cores(), 56);
        assert_eq!(d.usable_threads(), 224);
        d.validate().unwrap();
    }

    #[test]
    fn core_aligned_counts_match_paper_set() {
        let d = DeviceSpec::phi_31sp();
        // Paper: P ∈ {2, 4, 7, 8, 14, 28, 56}; we additionally include 1.
        assert_eq!(
            d.core_aligned_partition_counts(),
            vec![1, 2, 4, 7, 8, 14, 28, 56]
        );
    }

    #[test]
    fn phi_7120_has_a_different_candidate_set() {
        let d = DeviceSpec::phi_7120();
        assert_eq!(d.usable_cores(), 60);
        assert_eq!(d.usable_threads(), 240);
        assert_eq!(
            d.core_aligned_partition_counts(),
            vec![1, 2, 3, 4, 5, 6, 10, 12, 15, 20, 30, 60]
        );
    }

    #[test]
    fn tiny_device_geometry() {
        let d = DeviceSpec::tiny(4, 2);
        assert_eq!(d.usable_cores(), 4);
        assert_eq!(d.usable_threads(), 8);
        assert_eq!(d.core_aligned_partition_counts(), vec![1, 2, 4]);
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut d = DeviceSpec::phi_31sp();
        d.reserved_cores = d.total_cores;
        assert!(d.validate().is_err());

        let mut d = DeviceSpec::phi_31sp();
        d.threads_per_core = 0;
        assert!(d.validate().is_err());

        let d = DeviceSpec {
            total_cores: 0,
            reserved_cores: 0,
            threads_per_core: 1,
            memory_bytes: 0,
        };
        assert!(d.validate().is_err());
    }
}
