//! Simulated time.
//!
//! The simulator counts integer **nanoseconds** from the start of the run.
//! Integer time keeps the discrete-event engine exactly deterministic (no
//! float drift, no platform-dependent rounding), which the test-suite relies
//! on: the same plan always produces the same timeline.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional milliseconds (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// An instant sourced from a **wall-clock** offset since some run epoch,
    /// saturating at `u64::MAX` nanoseconds (~584 years). This is how
    /// measured (native-executor) spans enter the simulated-time domain so
    /// the timeline analysis tools work on real runs unchanged.
    #[inline]
    pub fn from_wall(since_epoch: std::time::Duration) -> SimTime {
        SimTime(u64::try_from(since_epoch.as_nanos()).unwrap_or(u64::MAX))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs clamp to zero: cost models occasionally
    /// produce tiny negative values from subtractive corrections, and a
    /// simulator must never schedule into the past.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds (same clamping as
    /// [`SimDuration::from_secs_f64`]).
    #[inline]
    pub fn from_micros_f64(us: f64) -> SimDuration {
        SimDuration::from_secs_f64(us * 1e-6)
    }

    /// Construct from a **wall-clock** duration, saturating at `u64::MAX`
    /// nanoseconds (the measured-span counterpart of
    /// [`SimTime::from_wall`]).
    #[inline]
    pub fn from_std(d: std::time::Duration) -> SimDuration {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.nanos(), 5_000);
        let t2 = t + SimDuration::from_millis(1);
        assert_eq!((t2 - t).nanos(), 1_000_000);
        assert_eq!(t2.since(t).as_millis_f64(), 1.0);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime(10);
        let b = SimTime(20);
        assert_eq!((a - b).nanos(), 0);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(
            SimDuration(5).saturating_sub(SimDuration(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9).nanos(), 1);
    }

    #[test]
    fn duration_conversions_are_consistent() {
        let d = SimDuration::from_millis(3);
        assert_eq!(d.as_micros_f64(), 3_000.0);
        assert_eq!(d.as_secs_f64(), 0.003);
        assert_eq!(SimDuration::from_micros_f64(2.5).nanos(), 2_500);
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
        assert_eq!(
            SimDuration::from_micros(10) * 3,
            SimDuration::from_micros(30)
        );
        assert_eq!(
            SimDuration::from_micros(10) / 4,
            SimDuration::from_nanos(2_500)
        );
    }

    #[test]
    fn wall_clock_conversions() {
        let d = std::time::Duration::from_micros(7);
        assert_eq!(SimTime::from_wall(d), SimTime(7_000));
        assert_eq!(SimDuration::from_std(d), SimDuration(7_000));
        // Saturation instead of overflow for absurd wall durations.
        let huge = std::time::Duration::from_secs(u64::MAX);
        assert_eq!(SimTime::from_wall(huge), SimTime(u64::MAX));
        assert_eq!(SimDuration::from_std(huge), SimDuration(u64::MAX));
    }

    #[test]
    fn ordering_and_max() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime(1).max(SimTime(2)), SimTime(2));
        assert_eq!(SimDuration(7).max(SimDuration(3)), SimDuration(7));
    }
}
