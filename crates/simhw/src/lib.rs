//! # micsim — a discrete-event simulator of a MIC-based heterogeneous platform
//!
//! This crate is the hardware substrate for the `hstreams` multiple-streams
//! runtime. It models the platform evaluated in *"Evaluating the Performance
//! Impact of Multiple Streams on the MIC-based Heterogeneous Platform"*
//! (Li et al., 2016): a host CPU plus one or more Intel Xeon Phi 31SP cards
//! over PCIe.
//!
//! The simulator is *structural*: it does not execute kernels, it prices
//! them. What it models precisely are the constraints that drive the paper's
//! findings:
//!
//! * a **serial PCIe link** — H2D and D2H transfers never overlap
//!   ([`pcie`], paper Fig. 5);
//! * **core partitions** with real geometry — partitions that straddle a
//!   physical core contend in its cache ([`partition`], Fig. 9);
//! * a **kernel cost model** with launch overhead, SMT scaling, small-task
//!   efficiency loss and per-invocation allocation cost ([`compute`],
//!   Figs. 6, 7, 9, 10);
//! * a deterministic **task-DAG engine** with FIFO resource arbitration
//!   ([`engine`]), so every simulated timeline is exactly reproducible.
//!
//! Calibration constants come from the paper's own measurements and live in
//! [`calibrate::PlatformConfig::phi_31sp`].
//!
//! ## Example
//!
//! ```
//! use micsim::engine::{Engine, TaskSpec};
//! use micsim::time::SimDuration;
//!
//! let mut engine = Engine::new();
//! let link = engine.add_resource("pcie");
//! let part = engine.add_resource("partition0");
//! let h2d = engine.add_task(TaskSpec {
//!     resource: Some(link),
//!     duration: SimDuration::from_micros(100),
//!     deps: vec![],
//!     label: "h2d".into(),
//! }).unwrap();
//! engine.add_task(TaskSpec {
//!     resource: Some(part),
//!     duration: SimDuration::from_micros(250),
//!     deps: vec![h2d],
//!     label: "kernel".into(),
//! }).unwrap();
//! let timeline = engine.run();
//! assert_eq!(timeline.makespan, SimDuration::from_micros(350));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibrate;
pub mod compute;
pub mod device;
pub mod engine;
pub mod event;
pub mod fabric;
pub mod fault;
pub mod memory;
pub mod partition;
pub mod pcie;
pub mod stats;
pub mod time;
pub mod trace;

pub use calibrate::PlatformConfig;
pub use device::{DeviceId, DeviceSpec};
pub use engine::{Engine, ResourceId, TaskId, TaskSpec, Timeline};
pub use fabric::SimPlatform;
pub use fault::FaultDie;
pub use partition::{Partition, PartitionPlan};
pub use pcie::{Direction, Duplex, LinkModel};
pub use time::{SimDuration, SimTime};
