//! Kernel execution cost model.
//!
//! Kernels in the simulator are described, not executed: a [`KernelProfile`]
//! says how much abstract *work* an invocation carries and how that work
//! scales over hardware threads. The model composes five effects, each of
//! which carries one of the paper's observations:
//!
//! 1. **Launch overhead** — every offloaded invocation pays a fixed cost
//!    (sink of performance at large task counts, Fig. 10 right tails).
//! 2. **Thread-per-core scaling** — a KNC core running 2/3/4 hardware
//!    threads is ~1.5/1.7/1.8× one thread, not 4×. Partition geometry
//!    (how many cores a partition spans) therefore matters.
//! 3. **Small-task efficiency** — per-thread work below a threshold wastes
//!    capacity on startup/synchronization (left edge of Fig. 7's U).
//! 4. **Core-sharing contention** — partitions that straddle a core contend
//!    in its private cache (the non-divisor dips of Fig. 9(a,b)).
//! 5. **Per-invocation allocation** — kernels that malloc/free scratch per
//!    call pay time linear in thread count (Kmeans' anomaly, Fig. 9(c)),
//!    plus an optional cache-locality bonus for compact partitions
//!    (Hotspot's dip at P≈33–37, Fig. 9(d)).

use std::fmt;

use crate::partition::Partition;
use crate::time::SimDuration;

/// Errors from the kernel cost model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComputeError {
    /// A kernel was priced on a partition with zero capacity (no threads /
    /// no cores) — it could never finish. Callers should surface this as a
    /// failed run rather than crash: an autotuning sweep prunes the
    /// candidate and moves on.
    EmptyPartition {
        /// The kernel that was launched.
        kernel: String,
    },
}

impl fmt::Display for ComputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeError::EmptyPartition { kernel } => {
                write!(f, "kernel {kernel:?} launched on empty partition")
            }
        }
    }
}

impl std::error::Error for ComputeError {}

/// Per-core throughput with 1..=4 resident hardware threads, in
/// *thread-equivalents* (the unit [`KernelProfile::thread_rate`] is defined
/// against). A KNC in-order core cannot issue from the same thread in
/// back-to-back cycles, so a solo thread reaches only ~60 % of a saturated
/// thread's rate, and four threads saturate the core at ~1.8 equivalents —
/// not 4.
#[derive(Clone, Debug, PartialEq)]
pub struct SmtScaling {
    /// `factor[k-1]` is the per-core capacity with `k` resident threads.
    pub factor: [f64; 4],
}

impl Default for SmtScaling {
    fn default() -> Self {
        // Typical KNC shape: 0.6, 1.3, 1.65, 1.8.
        SmtScaling {
            factor: [0.6, 1.3, 1.65, 1.8],
        }
    }
}

impl SmtScaling {
    /// Multiplier for `k` threads on one core (clamps at 4).
    pub fn per_core(&self, k: usize) -> f64 {
        match k {
            0 => 0.0,
            1..=4 => self.factor[k - 1],
            _ => self.factor[3],
        }
    }
}

/// How a kernel's working set interacts with partition shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CacheProfile {
    /// Indifferent to partition shape (streaming kernels: hBench, NN).
    Neutral,
    /// Rewards partitions that span few cores (stencils whose tile fits in
    /// a couple of L2s — the paper's Hotspot): `bonus` is the maximum rate
    /// multiplier, granted fully when a partition spans `ideal_cores` or
    /// fewer and decaying linearly until `worst_cores`.
    CompactFriendly {
        /// Maximum extra throughput (e.g. 0.18 = +18%).
        bonus: f64,
        /// Partition span (cores) at or below which the full bonus applies.
        ideal_cores: usize,
        /// Span at or above which no bonus applies.
        worst_cores: usize,
    },
}

/// Cost description of one kernel *type*.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelProfile {
    /// Human-readable name (shows up in traces).
    pub name: String,
    /// Work units one *thread-equivalent* retires per second (see
    /// [`SmtScaling`]; a fully populated core supplies ≈1.8 equivalents).
    /// The unit is whatever [`KernelInvocation::work`] is measured in
    /// (element-iterations, flops, points×neighbours, ...).
    pub thread_rate: f64,
    /// Per-thread work at which parallel efficiency drops to 50 %.
    /// Captures startup/sync cost of an OpenMP-style region.
    pub half_work_per_thread: f64,
    /// Time spent allocating+freeing scratch per invocation, **per resident
    /// hardware thread** (the Kmeans effect). Zero for most kernels.
    pub alloc_per_thread: SimDuration,
    /// Cache-shape sensitivity.
    pub cache: CacheProfile,
}

impl KernelProfile {
    /// A neutral profile with the given name and rate; other knobs zeroed.
    pub fn streaming(name: impl Into<String>, thread_rate: f64) -> KernelProfile {
        KernelProfile {
            name: name.into(),
            thread_rate,
            half_work_per_thread: 0.0,
            alloc_per_thread: SimDuration::ZERO,
            cache: CacheProfile::Neutral,
        }
    }
}

/// One kernel launch to be priced.
#[derive(Clone, Debug)]
pub struct KernelInvocation<'a> {
    /// The kernel type.
    pub profile: &'a KernelProfile,
    /// Work units in this invocation.
    pub work: f64,
}

/// Platform-wide compute-model parameters (shared by all kernels).
#[derive(Clone, Debug, PartialEq)]
pub struct ComputeModel {
    /// Fixed cost of launching any kernel (offload dispatch, doorbell,
    /// thread wakeup).
    pub launch_overhead: SimDuration,
    /// SMT scaling curve.
    pub smt: SmtScaling,
    /// Throughput multiplier applied when the partition shares a physical
    /// core with a neighbouring partition (e.g. 0.8 = −20 %).
    pub core_sharing_factor: f64,
    /// Hardware threads per core (copied from the device spec).
    pub threads_per_core: usize,
}

impl ComputeModel {
    /// Aggregate capacity of a partition in single-thread equivalents,
    /// given SMT scaling and the partition's core span.
    ///
    /// Threads distribute as evenly as the span allows; e.g. 6 threads over
    /// 2 cores ⇒ 3+3; 6 threads over 3 cores ⇒ 2+2+2.
    pub fn partition_capacity(&self, part: &Partition) -> f64 {
        if part.threads == 0 {
            return 0.0;
        }
        let cores = part.cores_spanned.max(1);
        let base = part.threads / cores;
        let extra = part.threads % cores; // this many cores run base+1 threads
        let full = self.smt.per_core(base + 1) * extra as f64;
        let rest = self.smt.per_core(base) * (cores - extra) as f64;
        full + rest
    }

    /// Parallel efficiency of spreading `work` over `threads` threads for
    /// `profile`: `w/(w + half)` with `w` the per-thread work share.
    pub fn parallel_efficiency(&self, profile: &KernelProfile, work: f64, threads: usize) -> f64 {
        if profile.half_work_per_thread <= 0.0 || threads == 0 {
            return 1.0;
        }
        let per_thread = work / threads as f64;
        per_thread / (per_thread + profile.half_work_per_thread)
    }

    /// Cache-shape multiplier for `profile` on `part` (≥ 1.0 is a bonus).
    pub fn cache_factor(&self, profile: &KernelProfile, part: &Partition) -> f64 {
        match profile.cache {
            CacheProfile::Neutral => 1.0,
            CacheProfile::CompactFriendly {
                bonus,
                ideal_cores,
                worst_cores,
            } => {
                let span = part.cores_spanned;
                if span <= ideal_cores {
                    1.0 + bonus
                } else if span >= worst_cores {
                    1.0
                } else {
                    let range = (worst_cores - ideal_cores) as f64;
                    let into = (span - ideal_cores) as f64;
                    1.0 + bonus * (1.0 - into / range)
                }
            }
        }
    }

    /// Price one kernel invocation on one partition.
    ///
    /// Returns [`ComputeError::EmptyPartition`] when `part` has zero
    /// capacity — such a kernel can never finish, and a run pricing it must
    /// fail rather than report a zero-cost launch.
    pub fn kernel_time(
        &self,
        inv: &KernelInvocation<'_>,
        part: &Partition,
    ) -> Result<SimDuration, ComputeError> {
        let profile = inv.profile;
        let capacity = self.partition_capacity(part);
        if capacity <= 0.0 {
            return Err(ComputeError::EmptyPartition {
                kernel: profile.name.clone(),
            });
        }
        let eff = self.parallel_efficiency(profile, inv.work, part.threads);
        let sharing = if part.shares_core {
            self.core_sharing_factor
        } else {
            1.0
        };
        let cache = self.cache_factor(profile, part);
        let rate = profile.thread_rate * capacity * eff * sharing * cache;
        let compute = SimDuration::from_secs_f64(inv.work / rate);
        let alloc = SimDuration::from_nanos(profile.alloc_per_thread.nanos() * part.threads as u64);
        Ok(self.launch_overhead + alloc + compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::partition::PartitionPlan;

    fn model() -> ComputeModel {
        ComputeModel {
            launch_overhead: SimDuration::from_micros(60),
            smt: SmtScaling::default(),
            core_sharing_factor: 0.8,
            threads_per_core: 4,
        }
    }

    fn plan(p: usize) -> PartitionPlan {
        PartitionPlan::equal_split(&DeviceSpec::phi_31sp(), p).unwrap()
    }

    #[test]
    fn smt_scaling_clamps() {
        let s = SmtScaling::default();
        assert_eq!(s.per_core(0), 0.0);
        assert_eq!(s.per_core(1), 0.6);
        assert_eq!(s.per_core(4), 1.8);
        assert_eq!(s.per_core(9), 1.8);
    }

    #[test]
    fn solo_thread_is_penalized() {
        // The in-order-core effect: one resident thread gets well under the
        // per-thread rate at full occupancy. This drives the right-hand tail
        // of the paper's Fig. 7.
        let s = SmtScaling::default();
        assert!(s.per_core(1) < s.per_core(4) / 2.0);
    }

    #[test]
    fn full_device_capacity() {
        let m = model();
        let plan = plan(1);
        // 56 cores x s(4)=1.8 => 100.8 thread-equivalents.
        let cap = m.partition_capacity(&plan.partitions[0]);
        assert!((cap - 100.8).abs() < 1e-9, "cap={cap}");
    }

    #[test]
    fn capacity_accounts_for_uneven_thread_spread() {
        let m = model();
        // 6 threads over 2 cores = 3+3 => 2 * s(3) = 3.3
        let part = Partition {
            index: 0,
            first_thread: 0,
            threads: 6,
            shares_core: false,
            cores_spanned: 2,
        };
        assert!((m.partition_capacity(&part) - 3.3).abs() < 1e-9);
        // 5 threads over 2 cores = 3+2 => s(3)+s(2) = 2.95
        let part5 = Partition {
            threads: 5,
            ..part.clone()
        };
        assert!((m.partition_capacity(&part5) - 2.95).abs() < 1e-9);
    }

    #[test]
    fn empty_partition_capacity_is_zero() {
        let m = model();
        let p = Partition {
            index: 0,
            first_thread: 0,
            threads: 0,
            shares_core: false,
            cores_spanned: 0,
        };
        assert_eq!(m.partition_capacity(&p), 0.0);
    }

    #[test]
    fn more_spread_threads_have_more_capacity() {
        // 8 threads on 2 cores (4+4 = 3.6) < 8 threads on 8 cores (8 x 0.6 = 4.8).
        let m = model();
        let packed = Partition {
            index: 0,
            first_thread: 0,
            threads: 8,
            shares_core: false,
            cores_spanned: 2,
        };
        let spread = Partition {
            cores_spanned: 8,
            ..packed.clone()
        };
        assert!(m.partition_capacity(&spread) > m.partition_capacity(&packed));
    }

    #[test]
    fn efficiency_falls_with_thread_count() {
        let m = model();
        let mut prof = KernelProfile::streaming("k", 1e9);
        prof.half_work_per_thread = 1000.0;
        let e_few = m.parallel_efficiency(&prof, 1e6, 8);
        let e_many = m.parallel_efficiency(&prof, 1e6, 224);
        assert!(e_few > e_many);
        assert!(e_many > 0.0 && e_few < 1.0);
        // Zero half-work => perfect efficiency.
        let perfect = KernelProfile::streaming("p", 1e9);
        assert_eq!(m.parallel_efficiency(&perfect, 1.0, 224), 1.0);
    }

    #[test]
    fn kernel_time_composition() {
        let m = model();
        let prof = KernelProfile::streaming("k", 1e9);
        let plan = plan(1);
        let inv = KernelInvocation {
            profile: &prof,
            work: 100.8e9, // exactly 1 second at full capacity
        };
        let t = m.kernel_time(&inv, &plan.partitions[0]).unwrap();
        let secs = t.as_secs_f64();
        assert!((secs - 1.0 - 60e-6).abs() < 1e-6, "t={secs}");
    }

    #[test]
    fn core_sharing_penalty_applies() {
        let m = model();
        let prof = KernelProfile::streaming("k", 1e9);
        let aligned = plan(4); // core-aligned
        let shared = plan(3); // splits cores
        let inv = KernelInvocation {
            profile: &prof,
            work: 1e9,
        };
        let t_aligned = m.kernel_time(&inv, &aligned.partitions[0]).unwrap();
        let t_shared_mid = m.kernel_time(&inv, &shared.partitions[1]).unwrap();
        // Middle partition of P=3 shares cores on both sides; even though it
        // has MORE threads (74 vs 56), the 0.8 contention factor plus capacity
        // math must make it slower per unit of work-per-capacity. Compare
        // per-capacity normalized times instead of absolute.
        let cap_a = m.partition_capacity(&aligned.partitions[0]);
        let cap_s = m.partition_capacity(&shared.partitions[1]);
        let norm_a = t_aligned.as_secs_f64() * cap_a;
        let norm_s = t_shared_mid.as_secs_f64() * cap_s;
        assert!(
            norm_s > norm_a * 1.1,
            "sharing partition should be >=10% worse normalized: {norm_s} vs {norm_a}"
        );
    }

    #[test]
    fn compact_friendly_bonus_interpolates() {
        let m = model();
        let prof = KernelProfile {
            name: "hotspot".into(),
            thread_rate: 1e9,
            half_work_per_thread: 0.0,
            alloc_per_thread: SimDuration::ZERO,
            cache: CacheProfile::CompactFriendly {
                bonus: 0.2,
                ideal_cores: 2,
                worst_cores: 10,
            },
        };
        let mk = |span: usize| Partition {
            index: 0,
            first_thread: 0,
            threads: 4,
            shares_core: false,
            cores_spanned: span,
        };
        assert!((m.cache_factor(&prof, &mk(1)) - 1.2).abs() < 1e-12);
        assert!((m.cache_factor(&prof, &mk(2)) - 1.2).abs() < 1e-12);
        assert!((m.cache_factor(&prof, &mk(10)) - 1.0).abs() < 1e-12);
        assert!((m.cache_factor(&prof, &mk(20)) - 1.0).abs() < 1e-12);
        let mid = m.cache_factor(&prof, &mk(6));
        assert!(mid > 1.0 && mid < 1.2);
    }

    #[test]
    fn alloc_cost_scales_with_threads() {
        let m = model();
        let mut prof = KernelProfile::streaming("kmeans", 1e12);
        prof.alloc_per_thread = SimDuration::from_micros(10);
        let inv = KernelInvocation {
            profile: &prof,
            work: 1.0,
        };
        let big = plan(1); // 224 threads
        let small = plan(56); // 4 threads
        let t_big = m.kernel_time(&inv, &big.partitions[0]).unwrap();
        let t_small = m.kernel_time(&inv, &small.partitions[0]).unwrap();
        // Alloc dominates: 2240us vs 40us (plus 60us launch each).
        assert!(t_big.as_micros_f64() > 2000.0);
        assert!(t_small.as_micros_f64() < 200.0);
    }

    #[test]
    fn kernel_on_empty_partition_is_a_typed_error() {
        let m = model();
        let prof = KernelProfile::streaming("k", 1e9);
        let p = Partition {
            index: 0,
            first_thread: 0,
            threads: 0,
            shares_core: false,
            cores_spanned: 0,
        };
        let inv = KernelInvocation {
            profile: &prof,
            work: 1.0,
        };
        let err = m.kernel_time(&inv, &p).unwrap_err();
        assert_eq!(
            err,
            ComputeError::EmptyPartition {
                kernel: "k".to_string()
            }
        );
        assert!(err.to_string().contains("empty partition"));
    }
}
