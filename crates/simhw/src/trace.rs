//! Timeline analysis: overlap statistics and ASCII Gantt rendering.
//!
//! The paper's temporal-sharing story is about *overlap*: how much of the
//! link's busy time hides under kernel execution. This module computes that
//! from an engine [`Timeline`] given a classification of resources into
//! link channels and compute partitions, and renders per-resource Gantt
//! charts for the examples.

use std::collections::BTreeMap;

use crate::engine::{ResourceId, Timeline};
use crate::time::{SimDuration, SimTime};

/// Classification of the resources in a timeline.
#[derive(Clone, Debug, Default)]
pub struct ResourceKinds {
    /// PCIe link channels.
    pub links: Vec<ResourceId>,
    /// Compute partitions.
    pub partitions: Vec<ResourceId>,
}

/// Overlap statistics for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct OverlapStats {
    /// End-to-end simulated time.
    pub makespan: SimDuration,
    /// Total time at least one link channel was busy.
    pub link_busy: SimDuration,
    /// Total time at least one partition was executing a kernel.
    pub compute_busy: SimDuration,
    /// Time both were busy simultaneously — the transfer time *hidden*
    /// behind computation.
    pub overlap: SimDuration,
}

impl OverlapStats {
    /// Fraction of link busy time hidden behind compute, in `0..=1`.
    pub fn hidden_fraction(&self) -> f64 {
        if self.link_busy == SimDuration::ZERO {
            return 0.0;
        }
        self.overlap.nanos() as f64 / self.link_busy.nanos() as f64
    }

    /// The lower bound a perfect overlap could reach:
    /// `max(link_busy, compute_busy)`.
    pub fn ideal_makespan(&self) -> SimDuration {
        self.link_busy.max(self.compute_busy)
    }
}

/// Half-open busy interval `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

/// Merge possibly-overlapping intervals into a sorted disjoint set.
pub fn merge_intervals(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.retain(|iv| iv.end > iv.start);
    intervals.sort_by_key(|iv| (iv.start, iv.end));
    let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match out.last_mut() {
            Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
            _ => out.push(iv),
        }
    }
    out
}

/// Total length of a disjoint interval set.
pub fn total_length(intervals: &[Interval]) -> SimDuration {
    intervals.iter().map(|iv| iv.end - iv.start).sum()
}

/// Intersection of two disjoint, sorted interval sets.
pub fn intersect(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let start = a[i].start.max(b[j].start);
        let end = a[i].end.min(b[j].end);
        if end > start {
            out.push(Interval { start, end });
        }
        if a[i].end <= b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

fn busy_intervals(timeline: &Timeline, resources: &[ResourceId]) -> Vec<Interval> {
    let set: std::collections::HashSet<ResourceId> = resources.iter().copied().collect();
    let raw: Vec<Interval> = timeline
        .records
        .iter()
        .filter(|r| r.resource.map(|res| set.contains(&res)).unwrap_or(false))
        .map(|r| Interval {
            start: r.start,
            end: r.finish,
        })
        .collect();
    merge_intervals(raw)
}

/// Per-partition utilization over one run — the load-balance counterpart
/// to [`OverlapStats`]. A starved partition (a `T < P` configuration, or a
/// straggler tile pinning its siblings idle) shows up as a high
/// [`idle_fraction`](PartitionStats::idle_fraction) and a long
/// [`longest_gap`](PartitionStats::longest_gap).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionStats {
    /// The partition resource these numbers describe.
    pub resource: ResourceId,
    /// Total time this partition was executing work.
    pub busy: SimDuration,
    /// `makespan - busy`: time the partition sat idle.
    pub idle: SimDuration,
    /// `idle / makespan` in `0..=1` (0 on an empty timeline). `1.0` means
    /// the partition never ran anything — fully starved.
    pub idle_fraction: f64,
    /// The longest single stretch of idleness (including before the
    /// partition's first task and after its last).
    pub longest_gap: SimDuration,
    /// Tasks executed on this partition.
    pub tasks: usize,
}

/// Per-partition busy/idle breakdown of `timeline` for every partition in
/// `kinds`, in `kinds.partitions` order. Partitions with no recorded work
/// report `busy = 0`, `idle_fraction = 1.0` — the starvation signature.
pub fn partition_stats(timeline: &Timeline, kinds: &ResourceKinds) -> Vec<PartitionStats> {
    let makespan = timeline.makespan;
    kinds
        .partitions
        .iter()
        .map(|&res| {
            let busy_ivs = busy_intervals(timeline, &[res]);
            let busy = total_length(&busy_ivs);
            let idle = makespan.saturating_sub(busy);
            let idle_fraction = if makespan == SimDuration::ZERO {
                0.0
            } else {
                idle.nanos() as f64 / makespan.nanos() as f64
            };
            // Longest idle stretch: gaps between busy intervals plus the
            // leading and trailing idle edges.
            let mut longest = SimDuration::ZERO;
            let mut cursor = SimTime(0);
            for iv in &busy_ivs {
                longest = longest.max(iv.start.since(cursor));
                cursor = iv.end;
            }
            longest = longest.max(SimTime(makespan.nanos()).since(cursor));
            let tasks = timeline
                .records
                .iter()
                .filter(|r| r.resource == Some(res))
                .count();
            PartitionStats {
                resource: res,
                busy,
                idle,
                idle_fraction,
                longest_gap: longest,
                tasks,
            }
        })
        .collect()
}

/// Compute overlap statistics for `timeline` under `kinds`.
pub fn overlap_stats(timeline: &Timeline, kinds: &ResourceKinds) -> OverlapStats {
    let link = busy_intervals(timeline, &kinds.links);
    let compute = busy_intervals(timeline, &kinds.partitions);
    let both = intersect(&link, &compute);
    OverlapStats {
        makespan: timeline.makespan,
        link_busy: total_length(&link),
        compute_busy: total_length(&compute),
        overlap: total_length(&both),
    }
}

/// Render an ASCII Gantt chart of the timeline, one row per resource,
/// `width` characters across the makespan.
pub fn render_gantt(
    timeline: &Timeline,
    names: &BTreeMap<ResourceId, String>,
    width: usize,
) -> String {
    let width = width.max(10);
    let span = timeline.makespan.nanos().max(1);
    let mut rows: BTreeMap<ResourceId, Vec<char>> =
        names.keys().map(|&r| (r, vec!['.'; width])).collect();
    for rec in &timeline.records {
        let Some(res) = rec.resource else { continue };
        let Some(row) = rows.get_mut(&res) else {
            continue;
        };
        let a = (rec.start.nanos() as u128 * width as u128 / span as u128) as usize;
        let b = (rec.finish.nanos() as u128 * width as u128 / span as u128) as usize;
        let b = b.clamp(a + 1, width);
        let glyph = rec.label.chars().next().unwrap_or('#');
        for cell in row.iter_mut().take(b).skip(a) {
            *cell = glyph;
        }
    }
    let name_width = names.values().map(String::len).max().unwrap_or(4);
    let mut out = String::new();
    for (res, row) in &rows {
        let name = &names[res];
        out.push_str(&format!("{name:>name_width$} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>name_width$} +{}>\n{:>name_width$}  0 .. {}\n",
        "",
        "-".repeat(width),
        "",
        timeline.makespan
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, TaskSpec};

    fn iv(a: u64, b: u64) -> Interval {
        Interval {
            start: SimTime(a),
            end: SimTime(b),
        }
    }

    #[test]
    fn merge_handles_overlaps_and_empties() {
        let merged = merge_intervals(vec![iv(5, 5), iv(0, 10), iv(5, 15), iv(20, 30)]);
        assert_eq!(merged, vec![iv(0, 15), iv(20, 30)]);
        assert_eq!(total_length(&merged), SimDuration(25));
    }

    #[test]
    fn merge_is_idempotent() {
        let once = merge_intervals(vec![iv(0, 3), iv(2, 8), iv(10, 12)]);
        let twice = merge_intervals(once.clone());
        assert_eq!(once, twice);
    }

    #[test]
    fn intersect_basic() {
        let a = vec![iv(0, 10), iv(20, 30)];
        let b = vec![iv(5, 25)];
        assert_eq!(intersect(&a, &b), vec![iv(5, 10), iv(20, 25)]);
        assert_eq!(intersect(&a, &[]), vec![]);
    }

    #[test]
    fn stats_from_simple_pipeline() {
        // link busy 0-10, compute busy 5-15 => overlap 5.
        let mut e = Engine::new();
        let link = e.add_resource("link");
        let part = e.add_resource("p0");
        let gate = e
            .add_task(TaskSpec {
                resource: None,
                duration: SimDuration(5),
                deps: vec![],
                label: "gate".into(),
            })
            .unwrap();
        e.add_task(TaskSpec {
            resource: Some(link),
            duration: SimDuration(10),
            deps: vec![],
            label: "h2d".into(),
        })
        .unwrap();
        e.add_task(TaskSpec {
            resource: Some(part),
            duration: SimDuration(10),
            deps: vec![gate],
            label: "exe".into(),
        })
        .unwrap();
        let tl = e.run();
        let stats = overlap_stats(
            &tl,
            &ResourceKinds {
                links: vec![link],
                partitions: vec![part],
            },
        );
        assert_eq!(stats.link_busy, SimDuration(10));
        assert_eq!(stats.compute_busy, SimDuration(10));
        assert_eq!(stats.overlap, SimDuration(5));
        assert_eq!(stats.hidden_fraction(), 0.5);
        assert_eq!(stats.ideal_makespan(), SimDuration(10));
        assert_eq!(stats.makespan, SimDuration(15));
    }

    #[test]
    fn partition_stats_expose_starvation() {
        // p0 busy 0-10 then 15-20; p1 completely idle (starved).
        let mut e = Engine::new();
        let p0 = e.add_resource("p0");
        let p1 = e.add_resource("p1");
        let first = e
            .add_task(TaskSpec {
                resource: Some(p0),
                duration: SimDuration(10),
                deps: vec![],
                label: "a".into(),
            })
            .unwrap();
        let gate = e
            .add_task(TaskSpec {
                resource: None,
                duration: SimDuration(5),
                deps: vec![first],
                label: "gap".into(),
            })
            .unwrap();
        e.add_task(TaskSpec {
            resource: Some(p0),
            duration: SimDuration(5),
            deps: vec![gate],
            label: "b".into(),
        })
        .unwrap();
        let tl = e.run();
        let stats = partition_stats(
            &tl,
            &ResourceKinds {
                links: vec![],
                partitions: vec![p0, p1],
            },
        );
        assert_eq!(stats[0].busy, SimDuration(15));
        assert_eq!(stats[0].idle, SimDuration(5));
        assert_eq!(stats[0].longest_gap, SimDuration(5));
        assert_eq!(stats[0].tasks, 2);
        assert_eq!(stats[1].busy, SimDuration::ZERO);
        assert_eq!(stats[1].idle_fraction, 1.0);
        assert_eq!(stats[1].longest_gap, SimDuration(20));
        assert_eq!(stats[1].tasks, 0);
        assert!((stats[0].idle_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn no_link_traffic_gives_zero_hidden_fraction() {
        let stats = OverlapStats {
            makespan: SimDuration(10),
            link_busy: SimDuration::ZERO,
            compute_busy: SimDuration(10),
            overlap: SimDuration::ZERO,
        };
        assert_eq!(stats.hidden_fraction(), 0.0);
    }

    #[test]
    fn gantt_renders_rows_for_named_resources() {
        let mut e = Engine::new();
        let link = e.add_resource("link");
        e.add_task(TaskSpec {
            resource: Some(link),
            duration: SimDuration::from_micros(10),
            deps: vec![],
            label: "h2d".into(),
        })
        .unwrap();
        let tl = e.run();
        let mut names = BTreeMap::new();
        names.insert(link, "link".to_string());
        let chart = render_gantt(&tl, &names, 40);
        assert!(chart.contains("link |"));
        assert!(chart.contains('h'), "glyph from label: {chart}");
    }
}

/// Export a timeline as a Chrome trace-event JSON string (load it at
/// `chrome://tracing` or in Perfetto). One row ("thread") per resource;
/// control tasks (no resource) land on a synthetic row `-1`.
pub fn chrome_trace(timeline: &Timeline, names: &BTreeMap<ResourceId, String>) -> String {
    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c if c.is_control() => vec![' '],
                c => vec![c],
            })
            .collect()
    }
    let mut out = String::from("[\n");
    // Thread-name metadata records.
    for (res, name) in names {
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}},\n",
            res.0,
            escape(name)
        ));
    }
    let mut first = true;
    for rec in &timeline.records {
        let tid = rec.resource.map(|r| r.0 as i64).unwrap_or(-1);
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            escape(&rec.label),
            tid,
            rec.start.as_micros_f64(),
            rec.finish.since(rec.start).as_micros_f64(),
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod chrome_tests {
    use super::*;
    use crate::engine::{Engine, TaskSpec};

    #[test]
    fn chrome_trace_is_valid_shape() {
        let mut e = Engine::new();
        let link = e.add_resource("link");
        e.add_task(TaskSpec {
            resource: Some(link),
            duration: SimDuration::from_micros(10),
            deps: vec![],
            label: "h2d \"quoted\"".into(),
        })
        .unwrap();
        e.add_task(TaskSpec {
            resource: None,
            duration: SimDuration::ZERO,
            deps: vec![],
            label: "event".into(),
        })
        .unwrap();
        let tl = e.run();
        let mut names = BTreeMap::new();
        names.insert(link, "link".to_string());
        let json = chrome_trace(&tl, &names);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("thread_name"));
        assert!(json.contains("h2d \\\"quoted\\\""), "{json}");
        assert!(json.contains("\"tid\":-1"), "control task row");
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
