//! Device memory book-keeping.
//!
//! The simulator does not store bytes for simulated buffers — it tracks
//! *capacity*, so that workloads which could never fit on a real 8 GB card
//! fail loudly instead of producing meaningless timings. It also catches
//! lifecycle bugs (double free, use after free) in executor code.

use std::collections::HashMap;

/// Handle to one device-side allocation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AllocId(pub u64);

/// Allocation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Not enough free device memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// The allocation id was never issued or was already freed.
    UnknownAlloc(AllocId),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory { requested, free } => {
                write!(f, "device OOM: requested {requested} B, {free} B free")
            }
            MemError::UnknownAlloc(id) => write!(f, "unknown or freed allocation {id:?}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Capacity tracker for one device's memory.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    used: u64,
    next_id: u64,
    live: HashMap<u64, u64>, // id -> bytes
    peak: u64,
}

impl DeviceMemory {
    /// Tracker for a device with `capacity` bytes.
    pub fn new(capacity: u64) -> DeviceMemory {
        DeviceMemory {
            capacity,
            used: 0,
            next_id: 0,
            live: HashMap::new(),
            peak: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Live allocation count.
    pub fn live_allocs(&self) -> usize {
        self.live.len()
    }

    /// Allocate `bytes`; zero-byte allocations are legal and get an id.
    pub fn alloc(&mut self, bytes: u64) -> Result<AllocId, MemError> {
        if bytes > self.free_bytes() {
            return Err(MemError::OutOfMemory {
                requested: bytes,
                free: self.free_bytes(),
            });
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.live.insert(id.0, bytes);
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(id)
    }

    /// Free an allocation.
    pub fn dealloc(&mut self, id: AllocId) -> Result<(), MemError> {
        match self.live.remove(&id.0) {
            Some(bytes) => {
                self.used -= bytes;
                Ok(())
            }
            None => Err(MemError::UnknownAlloc(id)),
        }
    }

    /// Size of a live allocation.
    pub fn size_of(&self, id: AllocId) -> Result<u64, MemError> {
        self.live
            .get(&id.0)
            .copied()
            .ok_or(MemError::UnknownAlloc(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = DeviceMemory::new(1000);
        let a = m.alloc(400).unwrap();
        let b = m.alloc(600).unwrap();
        assert_eq!(m.used(), 1000);
        assert_eq!(m.free_bytes(), 0);
        assert_eq!(m.size_of(a).unwrap(), 400);
        m.dealloc(a).unwrap();
        assert_eq!(m.used(), 600);
        m.dealloc(b).unwrap();
        assert_eq!(m.used(), 0);
        assert_eq!(m.peak(), 1000);
        assert_eq!(m.live_allocs(), 0);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut m = DeviceMemory::new(100);
        m.alloc(80).unwrap();
        let err = m.alloc(30).unwrap_err();
        assert_eq!(
            err,
            MemError::OutOfMemory {
                requested: 30,
                free: 20
            }
        );
    }

    #[test]
    fn double_free_detected() {
        let mut m = DeviceMemory::new(100);
        let a = m.alloc(10).unwrap();
        m.dealloc(a).unwrap();
        assert_eq!(m.dealloc(a), Err(MemError::UnknownAlloc(a)));
        assert_eq!(m.size_of(a), Err(MemError::UnknownAlloc(a)));
    }

    #[test]
    fn zero_byte_allocs_are_distinct() {
        let mut m = DeviceMemory::new(0);
        let a = m.alloc(0).unwrap();
        let b = m.alloc(0).unwrap();
        assert_ne!(a, b);
        m.dealloc(a).unwrap();
        m.dealloc(b).unwrap();
    }

    #[test]
    fn freed_memory_is_reusable() {
        let mut m = DeviceMemory::new(100);
        let a = m.alloc(100).unwrap();
        assert!(m.alloc(1).is_err());
        m.dealloc(a).unwrap();
        assert!(m.alloc(100).is_ok());
    }
}
