//! Resource partitioning (spatial sharing).
//!
//! hStreams splits a card's usable hardware threads into `P` groups
//! ("partitions"); each stream executes on one partition. The paper's
//! Fig. 9(a,b) shows that partition *geometry* matters: when `P` divides the
//! usable core count, each partition owns whole cores; otherwise some core's
//! four hardware threads end up in two different partitions, and the two
//! streams sharing that core fight over its private cache.
//!
//! This module computes partition plans exactly the way hStreams does
//! (near-equal thread counts, remainder dealt left-to-right) and exposes the geometry facts
//! the cost model needs: threads per partition, cores spanned, and whether a
//! partition shares a core with its neighbour.

use crate::device::DeviceSpec;

/// One partition: a contiguous range of hardware-thread slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Index of this partition within the plan.
    pub index: usize,
    /// First usable-thread slot (0-based, uOS threads excluded).
    pub first_thread: usize,
    /// Number of hardware threads owned.
    pub threads: usize,
    /// Whether this partition shares at least one physical core with another
    /// partition (the Fig. 9 cache-contention condition).
    pub shares_core: bool,
    /// Number of distinct physical cores this partition touches.
    pub cores_spanned: usize,
}

/// A full partitioning of one device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Hardware threads per core on the target device.
    pub threads_per_core: usize,
    /// The partitions, in thread order.
    pub partitions: Vec<Partition>,
}

/// Errors from partition planning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// Asked for zero partitions.
    ZeroPartitions,
    /// More partitions than usable hardware threads.
    TooManyPartitions {
        /// Requested partition count.
        requested: usize,
        /// Usable hardware threads on the device.
        threads: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::ZeroPartitions => write!(f, "partition count must be positive"),
            PartitionError::TooManyPartitions { requested, threads } => write!(
                f,
                "requested {requested} partitions but device has only {threads} usable threads"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

impl PartitionPlan {
    /// Split `device`'s usable threads into `count` near-equal partitions.
    ///
    /// Mirrors hStreams' `hStreams_app_init(count, ...)`: threads are dealt
    /// out contiguously, with the first `usable_threads % count` partitions
    /// receiving one extra thread so every hardware thread is assigned.
    ///
    /// This is what produces the paper's core-alignment rule: a plan is free
    /// of core sharing exactly when `count` divides the usable *core* count
    /// (56 on the 31SP ⇒ P ∈ {1, 2, 4, 7, 8, 14, 28, 56}).
    ///
    /// ```
    /// use micsim::{DeviceSpec, PartitionPlan};
    /// let phi = DeviceSpec::phi_31sp();
    /// let aligned = PartitionPlan::equal_split(&phi, 4).unwrap();
    /// assert!(!aligned.has_core_sharing());
    /// assert_eq!(aligned.threads_per_partition(), 56);
    /// let misaligned = PartitionPlan::equal_split(&phi, 5).unwrap();
    /// assert!(misaligned.has_core_sharing()); // 5 does not divide 56
    /// ```
    pub fn equal_split(device: &DeviceSpec, count: usize) -> Result<PartitionPlan, PartitionError> {
        if count == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        let total = device.usable_threads();
        if count > total {
            return Err(PartitionError::TooManyPartitions {
                requested: count,
                threads: total,
            });
        }
        let per = total / count;
        let extra = total % count; // first `extra` partitions get per+1
        let tpc = device.threads_per_core;
        let mut partitions = Vec::with_capacity(count);
        let mut first_thread = 0usize;
        for index in 0..count {
            let threads = if index < extra { per + 1 } else { per };
            let last_thread = first_thread + threads - 1; // inclusive
            let first_core = first_thread / tpc;
            let last_core = last_thread / tpc;
            partitions.push(Partition {
                index,
                first_thread,
                threads,
                shares_core: false, // fixed up below
                cores_spanned: last_core - first_core + 1,
            });
            first_thread += threads;
        }
        // A partition shares a core when its boundary with a neighbour falls
        // inside a core (i.e. the boundary thread index is not a multiple of
        // threads_per_core). Only inter-partition boundaries count; the first
        // partition's lower edge and the last one's upper edge touch nobody.
        #[allow(clippy::needless_range_loop)]
        for i in 0..count {
            let left_boundary_mid_core = partitions[i].first_thread % tpc != 0 && i > 0;
            let right_boundary = partitions[i].first_thread + partitions[i].threads;
            let right_boundary_mid_core = right_boundary % tpc != 0 && i + 1 < count;
            partitions[i].shares_core = left_boundary_mid_core || right_boundary_mid_core;
        }
        Ok(PartitionPlan {
            threads_per_core: tpc,
            partitions,
        })
    }

    /// Number of partitions in the plan.
    pub fn count(&self) -> usize {
        self.partitions.len()
    }

    /// Threads in the *smallest* partition (partitions differ by at most
    /// one thread). This matches the paper's "224/N threads per stream".
    pub fn threads_per_partition(&self) -> usize {
        self.partitions.iter().map(|p| p.threads).min().unwrap_or(0)
    }

    /// Whether **any** partition shares a physical core with a neighbour —
    /// the condition under which Fig. 9(a,b) shows degraded performance.
    pub fn has_core_sharing(&self) -> bool {
        self.partitions.iter().any(|p| p.shares_core)
    }

    /// Fraction of partitions that share a core with a neighbour, in `0..=1`.
    /// The cost model scales the contention penalty by this.
    pub fn core_sharing_fraction(&self) -> f64 {
        if self.partitions.is_empty() {
            return 0.0;
        }
        let sharing = self.partitions.iter().filter(|p| p.shares_core).count();
        sharing as f64 / self.partitions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn phi() -> DeviceSpec {
        DeviceSpec::phi_31sp()
    }

    #[test]
    fn equal_split_covers_threads_exactly_once() {
        for count in 1..=224 {
            let plan = PartitionPlan::equal_split(&phi(), count).unwrap();
            let per = 224 / count;
            assert_eq!(plan.count(), count);
            // Near-equal: every partition has per or per+1 threads.
            assert!(plan
                .partitions
                .iter()
                .all(|p| p.threads == per || p.threads == per + 1));
            let assigned: usize = plan.partitions.iter().map(|p| p.threads).sum();
            assert_eq!(assigned, 224, "all usable threads assigned");
            // Contiguity / no overlap.
            for w in plan.partitions.windows(2) {
                assert_eq!(w[0].first_thread + w[0].threads, w[1].first_thread);
            }
        }
    }

    #[test]
    fn divisors_of_56_are_core_aligned() {
        for &p in &[1usize, 2, 4, 7, 8, 14, 28, 56] {
            let plan = PartitionPlan::equal_split(&phi(), p).unwrap();
            assert!(
                !plan.has_core_sharing(),
                "P={p} should be core-aligned on the 31SP"
            );
            assert_eq!(plan.threads_per_partition(), 224 / p);
        }
    }

    #[test]
    fn non_divisors_share_cores() {
        // 224 threads, 4/core. P=3 ⇒ 75+75+74 threads: the boundary at
        // thread 75 falls mid-core (75 % 4 != 0).
        for &p in &[3usize, 5, 6, 9, 13, 15, 33, 37] {
            let plan = PartitionPlan::equal_split(&phi(), p).unwrap();
            assert!(
                plan.has_core_sharing(),
                "P={p} must split some core across partitions"
            );
        }
        // P=16 gives 14 threads each: 14 % 4 != 0 ⇒ sharing even though
        // 224 % 16 == 0. Core alignment needs 56 % P == 0, not 224 % P == 0.
        let plan = PartitionPlan::equal_split(&phi(), 16).unwrap();
        assert!(plan.has_core_sharing());
    }

    #[test]
    fn single_partition_owns_everything() {
        let plan = PartitionPlan::equal_split(&phi(), 1).unwrap();
        assert_eq!(plan.threads_per_partition(), 224);
        assert_eq!(plan.partitions[0].cores_spanned, 56);
        assert!(!plan.has_core_sharing());
    }

    #[test]
    fn hotspot_sweet_spot_geometry() {
        // Fig. 9(d): P in 33..=37 gives 6–7 threads per partition spanning
        // at most two cores.
        for p in 33..=37 {
            let plan = PartitionPlan::equal_split(&phi(), p).unwrap();
            let per = plan.threads_per_partition();
            assert!((6..=7).contains(&per), "P={p} gives {per} threads");
            assert!(plan.partitions.iter().all(|x| x.cores_spanned <= 3));
        }
    }

    #[test]
    fn errors_on_bad_counts() {
        assert_eq!(
            PartitionPlan::equal_split(&phi(), 0),
            Err(PartitionError::ZeroPartitions)
        );
        assert!(matches!(
            PartitionPlan::equal_split(&phi(), 225),
            Err(PartitionError::TooManyPartitions { .. })
        ));
        // Exactly thread count is fine: one thread each.
        let plan = PartitionPlan::equal_split(&phi(), 224).unwrap();
        assert_eq!(plan.threads_per_partition(), 1);
    }

    #[test]
    fn sharing_fraction_bounds() {
        let aligned = PartitionPlan::equal_split(&phi(), 4).unwrap();
        assert_eq!(aligned.core_sharing_fraction(), 0.0);
        let misaligned = PartitionPlan::equal_split(&phi(), 3).unwrap();
        let f = misaligned.core_sharing_fraction();
        assert!(f > 0.0 && f <= 1.0);
    }
}
