//! Measurement statistics.
//!
//! The paper runs each benchmark 11 times, discards the first (warm-up)
//! iteration and reports the mean of the remaining 10. [`Repetitions`]
//! encodes that protocol for the native executor, where wall-clock noise is
//! real; on the deterministic simulator every repetition is identical and
//! one run suffices.

/// Summary statistics over a sample of seconds-valued measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize `samples`; returns `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// The paper's measurement protocol: run `total` times, ignore the first
/// `warmup`, report the mean of the rest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Repetitions {
    /// Total runs.
    pub total: usize,
    /// Leading runs discarded.
    pub warmup: usize,
}

impl Default for Repetitions {
    fn default() -> Self {
        Repetitions::paper()
    }
}

impl Repetitions {
    /// The paper's protocol: 11 runs, first discarded.
    pub fn paper() -> Repetitions {
        Repetitions {
            total: 11,
            warmup: 1,
        }
    }

    /// A single measurement (for the deterministic simulator).
    pub fn once() -> Repetitions {
        Repetitions {
            total: 1,
            warmup: 0,
        }
    }

    /// Run `f` per the protocol and summarize the retained samples.
    pub fn measure<F: FnMut() -> f64>(&self, mut f: F) -> Summary {
        assert!(self.total > self.warmup, "no samples would be retained");
        let samples: Vec<f64> = (0..self.total).map(|_| f()).skip(self.warmup).collect();
        Summary::of(&samples).expect("at least one retained sample")
    }
}

/// GFLOP/s from a flop count and elapsed seconds.
pub fn gflops(flops: f64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    flops / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert!((s.stddev - 1.2909944).abs() < 1e-6);
        assert_eq!((s.min, s.max), (1.0, 4.0));
    }

    #[test]
    fn empty_samples_give_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let s = Summary::of(&[5.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn repetitions_discard_warmup() {
        let mut calls = 0;
        let s = Repetitions::paper().measure(|| {
            calls += 1;
            if calls == 1 {
                1000.0 // cold run, must be ignored
            } else {
                1.0
            }
        });
        assert_eq!(calls, 11);
        assert_eq!(s.n, 10);
        assert_eq!(s.mean, 1.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn degenerate_protocol_panics() {
        Repetitions {
            total: 1,
            warmup: 1,
        }
        .measure(|| 0.0);
    }

    #[test]
    fn gflops_math() {
        assert_eq!(gflops(2e9, 1.0), 2.0);
        assert_eq!(gflops(1e9, 0.0), 0.0);
        assert_eq!(gflops(5e8, 0.5), 1.0);
    }
}
