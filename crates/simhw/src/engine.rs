//! The discrete-event engine.
//!
//! The engine simulates a **task DAG over exclusive resources**:
//!
//! * a *resource* is anything that serializes work — the PCIe link of a card,
//!   one core partition, the host thread that dispatches actions;
//! * a *task* occupies exactly one resource (or none, for pure control
//!   dependencies) for a precomputed duration, and may depend on other tasks.
//!
//! The stream executor in the `hstreams` crate lowers a streamed program into
//! this form: per-stream FIFO edges, explicit event edges, transfers onto the
//! link resource, kernels onto partition resources.
//!
//! Arbitration is FIFO: when a resource frees up, the waiting task that
//! became ready earliest (ties broken by creation order) runs next. Together
//! with the deterministic event queue this makes simulated timelines exactly
//! reproducible.

use std::collections::VecDeque;

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Handle to a serializing resource.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ResourceId(pub usize);

/// Handle to a task in the DAG.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub usize);

/// A task to simulate.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Resource the task occupies; `None` for zero-footprint control tasks
    /// (events, barriers) that only propagate dependencies.
    pub resource: Option<ResourceId>,
    /// How long the task holds its resource.
    pub duration: SimDuration,
    /// Tasks that must finish before this one may start.
    pub deps: Vec<TaskId>,
    /// Free-form label used in traces ("h2d tile 3", "gemm(2,4)", ...).
    pub label: String,
}

/// Completion record for one task.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskRecord {
    /// The task this record describes.
    pub task: TaskId,
    /// Resource it ran on, if any.
    pub resource: Option<ResourceId>,
    /// When every dependency was satisfied.
    pub ready: SimTime,
    /// When it actually started (≥ `ready`; waits for the resource).
    pub start: SimTime,
    /// When it finished.
    pub finish: SimTime,
    /// Label copied from the spec.
    pub label: String,
    /// The task whose completion gated this one's start — either its
    /// last-finishing dependency or the task that freed its resource —
    /// `None` if it started unimpeded at t = 0.
    pub critical_pred: Option<TaskId>,
}

/// The completed simulation: per-task records plus the makespan.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// One record per task, indexed by `TaskId.0`.
    pub records: Vec<TaskRecord>,
    /// Completion time of the last task.
    pub makespan: SimDuration,
}

impl TaskRecord {
    /// A record sourced from an external **measurement** (e.g. a wall-clock
    /// span stamped by the native executor) rather than simulation: `ready`
    /// coincides with `start` and there is no gating predecessor — measured
    /// spans carry no dependency information. The task id is provisional;
    /// [`Timeline::from_records`] renumbers it.
    pub fn measured(
        resource: Option<ResourceId>,
        start: SimTime,
        finish: SimTime,
        label: impl Into<String>,
    ) -> TaskRecord {
        TaskRecord {
            task: TaskId(0),
            resource,
            ready: start,
            start,
            finish,
            label: label.into(),
            critical_pred: None,
        }
    }
}

impl Timeline {
    /// Record for `task`.
    pub fn record(&self, task: TaskId) -> &TaskRecord {
        &self.records[task.0]
    }

    /// Assemble a timeline from externally produced records — the entry
    /// point for wall-clock-sourced spans (native-executor traces). Records
    /// are sorted by `(start, finish)` and renumbered so that
    /// `record(TaskId)` indexing holds; `critical_pred` is cleared because
    /// renumbering invalidates the original ids and measured records have
    /// none. The makespan is the latest finish.
    pub fn from_records(mut records: Vec<TaskRecord>) -> Timeline {
        records.sort_by_key(|r| (r.start, r.finish));
        for (i, r) in records.iter_mut().enumerate() {
            r.task = TaskId(i);
            r.critical_pred = None;
        }
        let makespan = records
            .iter()
            .map(|r| r.finish)
            .max()
            .unwrap_or(SimTime::ZERO)
            - SimTime::ZERO;
        Timeline { records, makespan }
    }

    /// Total busy time of `resource` across the run.
    pub fn resource_busy(&self, resource: ResourceId) -> SimDuration {
        self.records
            .iter()
            .filter(|r| r.resource == Some(resource))
            .map(|r| r.finish - r.start)
            .sum()
    }

    /// Utilization of `resource` over the makespan, in `0..=1`.
    pub fn resource_utilization(&self, resource: ResourceId) -> f64 {
        if self.makespan == SimDuration::ZERO {
            return 0.0;
        }
        self.resource_busy(resource).nanos() as f64 / self.makespan.nanos() as f64
    }

    /// The critical path: walk back from the last-finishing task through
    /// each task's gating predecessor (last dependency or resource-freer).
    /// Returned front-to-back; its ends span the whole makespan, so the
    /// labels along it name exactly what limited this run.
    pub fn critical_path(&self) -> Vec<TaskId> {
        let Some(last) = self
            .records
            .iter()
            .max_by_key(|r| (r.finish, r.task))
            .map(|r| r.task)
        else {
            return Vec::new();
        };
        let mut path = vec![last];
        let mut cur = last;
        while let Some(pred) = self.records[cur.0].critical_pred {
            path.push(pred);
            cur = pred;
        }
        path.reverse();
        path
    }

    /// Aggregate time on the critical path per label prefix (text before
    /// the first `(` or space): a quick answer to "what limits this run?".
    pub fn critical_path_breakdown(&self) -> Vec<(String, SimDuration)> {
        let mut agg: std::collections::BTreeMap<String, SimDuration> =
            std::collections::BTreeMap::new();
        for id in self.critical_path() {
            let r = &self.records[id.0];
            let key = r.label.split(['(', ' ']).next().unwrap_or("?").to_string();
            *agg.entry(key).or_default() += r.finish - r.start;
        }
        let mut out: Vec<_> = agg.into_iter().collect();
        out.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
        out
    }
}

/// Errors surfaced while building or running a DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A dependency references a task id that does not exist (yet).
    ///
    /// Dependencies must point backwards: the engine only accepts edges to
    /// already-created tasks, which structurally rules out cycles.
    UnknownDependency {
        /// Index of the task being added.
        task: usize,
        /// The nonexistent dependency.
        dep: TaskId,
    },
    /// A task references a resource that was never registered.
    UnknownResource {
        /// Index of the task being added.
        task: usize,
        /// The unregistered resource.
        resource: ResourceId,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownDependency { task, dep } => {
                write!(f, "task {task} depends on unknown task {:?}", dep)
            }
            EngineError::UnknownResource { task, resource } => {
                write!(f, "task {task} uses unknown resource {:?}", resource)
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[derive(Clone, Copy, Debug)]
enum Event {
    TaskFinished(TaskId),
}

struct TaskState {
    spec: TaskSpec,
    unmet_deps: usize,
    dependents: Vec<TaskId>,
    ready: Option<SimTime>,
    start: Option<SimTime>,
    finish: Option<SimTime>,
    ready_setter: Option<TaskId>,
    resource_freer: Option<TaskId>,
}

struct ResourceState {
    #[allow(dead_code)]
    name: String,
    busy: bool,
    // FIFO of tasks waiting for this resource, in (ready_time, task_id) order.
    waiting: VecDeque<TaskId>,
}

/// Builder + runner for one simulation.
pub struct Engine {
    tasks: Vec<TaskState>,
    resources: Vec<ResourceState>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Fresh empty engine.
    pub fn new() -> Engine {
        Engine {
            tasks: Vec::new(),
            resources: Vec::new(),
        }
    }

    /// Register a serializing resource.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        let id = ResourceId(self.resources.len());
        self.resources.push(ResourceState {
            name: name.into(),
            busy: false,
            waiting: VecDeque::new(),
        });
        id
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Add a task. Dependencies must reference earlier tasks (see
    /// [`EngineError::UnknownDependency`]).
    pub fn add_task(&mut self, spec: TaskSpec) -> Result<TaskId, EngineError> {
        let id = TaskId(self.tasks.len());
        if let Some(res) = spec.resource {
            if res.0 >= self.resources.len() {
                return Err(EngineError::UnknownResource {
                    task: id.0,
                    resource: res,
                });
            }
        }
        for &dep in &spec.deps {
            if dep.0 >= self.tasks.len() {
                return Err(EngineError::UnknownDependency { task: id.0, dep });
            }
        }
        let unmet = spec.deps.len();
        for &dep in &spec.deps {
            self.tasks[dep.0].dependents.push(id);
        }
        self.tasks.push(TaskState {
            spec,
            unmet_deps: unmet,
            dependents: Vec::new(),
            ready: None,
            start: None,
            finish: None,
            ready_setter: None,
            resource_freer: None,
        });
        Ok(id)
    }

    /// Run the simulation to completion and consume the engine.
    pub fn run(mut self) -> Timeline {
        let mut queue: EventQueue<Event> = EventQueue::new();

        // Seed: every task with no dependencies is ready at t=0. Iterate in
        // id order so FIFO arbitration matches creation (enqueue) order.
        let initially_ready: Vec<TaskId> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.unmet_deps == 0)
            .map(|(i, _)| TaskId(i))
            .collect();
        for id in initially_ready {
            self.task_became_ready(id, SimTime::ZERO, &mut queue);
        }

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::TaskFinished(id) => self.finish_task(id, now, &mut queue),
            }
        }

        let makespan = self
            .tasks
            .iter()
            .filter_map(|t| t.finish)
            .max()
            .unwrap_or(SimTime::ZERO)
            - SimTime::ZERO;

        let records = self
            .tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                // Whichever blocker acted later is the critical one; the
                // resource freer matters only if the task actually waited
                // past its ready time.
                let critical_pred = if t.start > t.ready {
                    t.resource_freer.or(t.ready_setter)
                } else {
                    t.ready_setter
                };
                TaskRecord {
                    task: TaskId(i),
                    resource: t.spec.resource,
                    ready: t.ready.unwrap_or(SimTime::ZERO),
                    start: t.start.unwrap_or(SimTime::ZERO),
                    finish: t.finish.unwrap_or(SimTime::ZERO),
                    label: t.spec.label,
                    critical_pred,
                }
            })
            .collect();

        Timeline { records, makespan }
    }

    fn task_became_ready(&mut self, id: TaskId, now: SimTime, queue: &mut EventQueue<Event>) {
        debug_assert!(self.tasks[id.0].ready.is_none(), "task readied twice");
        self.tasks[id.0].ready = Some(now);
        match self.tasks[id.0].spec.resource {
            None => self.start_task(id, now, queue),
            Some(res) => {
                if self.resources[res.0].busy {
                    self.resources[res.0].waiting.push_back(id);
                } else {
                    self.resources[res.0].busy = true;
                    self.start_task(id, now, queue);
                }
            }
        }
    }

    fn start_task(&mut self, id: TaskId, now: SimTime, queue: &mut EventQueue<Event>) {
        let task = &mut self.tasks[id.0];
        task.start = Some(now);
        let finish = now + task.spec.duration;
        queue.schedule(finish, Event::TaskFinished(id));
    }

    fn finish_task(&mut self, id: TaskId, now: SimTime, queue: &mut EventQueue<Event>) {
        self.tasks[id.0].finish = Some(now);

        // Free the resource and hand it to the longest-waiting ready task.
        if let Some(res) = self.tasks[id.0].spec.resource {
            let state = &mut self.resources[res.0];
            if let Some(next) = state.waiting.pop_front() {
                // Resource stays busy; next task starts immediately.
                self.tasks[next.0].resource_freer = Some(id);
                self.start_task(next, now, queue);
            } else {
                state.busy = false;
            }
        }

        // Propagate readiness to dependents.
        let dependents = std::mem::take(&mut self.tasks[id.0].dependents);
        for dep in &dependents {
            let t = &mut self.tasks[dep.0];
            t.unmet_deps -= 1;
            if t.unmet_deps == 0 {
                t.ready_setter = Some(id);
                self.task_became_ready(*dep, now, queue);
            }
        }
        self.tasks[id.0].dependents = dependents;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(resource: Option<ResourceId>, us: u64, deps: Vec<TaskId>, label: &str) -> TaskSpec {
        TaskSpec {
            resource,
            duration: SimDuration::from_micros(us),
            deps,
            label: label.into(),
        }
    }

    #[test]
    fn serial_chain_accumulates() {
        let mut e = Engine::new();
        let r = e.add_resource("r");
        let a = e.add_task(task(Some(r), 10, vec![], "a")).unwrap();
        let b = e.add_task(task(Some(r), 20, vec![a], "b")).unwrap();
        let c = e.add_task(task(Some(r), 30, vec![b], "c")).unwrap();
        let tl = e.run();
        assert_eq!(tl.makespan, SimDuration::from_micros(60));
        assert_eq!(tl.record(c).start, SimTime(30_000));
        assert_eq!(tl.record(c).finish, SimTime(60_000));
        assert_eq!(tl.resource_utilization(r), 1.0);
    }

    #[test]
    fn independent_tasks_on_distinct_resources_overlap() {
        let mut e = Engine::new();
        let r1 = e.add_resource("r1");
        let r2 = e.add_resource("r2");
        e.add_task(task(Some(r1), 50, vec![], "x")).unwrap();
        e.add_task(task(Some(r2), 50, vec![], "y")).unwrap();
        let tl = e.run();
        assert_eq!(tl.makespan, SimDuration::from_micros(50));
    }

    #[test]
    fn shared_resource_serializes_in_fifo_order() {
        let mut e = Engine::new();
        let r = e.add_resource("link");
        let ids: Vec<_> = (0..4)
            .map(|i| {
                e.add_task(task(Some(r), 10, vec![], &format!("t{i}")))
                    .unwrap()
            })
            .collect();
        let tl = e.run();
        assert_eq!(tl.makespan, SimDuration::from_micros(40));
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(tl.record(*id).start, SimTime(10_000 * i as u64));
        }
    }

    #[test]
    fn pipeline_overlap_matches_fig1_arithmetic() {
        // The paper's Fig. 1: three equal stages (H2D, EXE, D2H) per task.
        // With one stream 2 tasks take 6 units; with enough streams the
        // makespan for 4 tasks is 6 units too — here stages use three
        // distinct resources (link-in, compute, link-out), the idealized
        // platform of Fig. 1.
        let unit = 100u64;
        let build = |streams: usize, tasks: usize| {
            let mut e = Engine::new();
            let h2d = e.add_resource("h2d");
            let d2h = e.add_resource("d2h");
            let partitions: Vec<_> = (0..streams)
                .map(|i| e.add_resource(format!("p{i}")))
                .collect();
            let mut last_in_stream: Vec<Option<TaskId>> = vec![None; streams];
            for t in 0..tasks {
                let s = t % streams;
                let dep = last_in_stream[s].map(|d| vec![d]).unwrap_or_default();
                let a = e.add_task(task(Some(h2d), unit, dep, "h2d")).unwrap();
                let b = e
                    .add_task(task(Some(partitions[s]), unit, vec![a], "exe"))
                    .unwrap();
                let c = e.add_task(task(Some(d2h), unit, vec![b], "d2h")).unwrap();
                last_in_stream[s] = Some(c);
            }
            e.run().makespan
        };
        // Single stream, 2 tasks: fully serial ⇒ 6 units.
        assert_eq!(build(1, 2), SimDuration::from_micros(600));
        // Four streams, 4 tasks: software pipeline ⇒ 6 units for 4 tasks.
        assert_eq!(build(4, 4), SimDuration::from_micros(600));
    }

    #[test]
    fn control_tasks_take_no_resource() {
        let mut e = Engine::new();
        let r = e.add_resource("r");
        let a = e.add_task(task(Some(r), 10, vec![], "a")).unwrap();
        let b = e.add_task(task(Some(r), 10, vec![], "b")).unwrap();
        // Barrier joining a and b, then a dependent task.
        let bar = e
            .add_task(TaskSpec {
                resource: None,
                duration: SimDuration::ZERO,
                deps: vec![a, b],
                label: "barrier".into(),
            })
            .unwrap();
        let c = e.add_task(task(Some(r), 10, vec![bar], "c")).unwrap();
        let tl = e.run();
        assert_eq!(tl.record(bar).start, tl.record(bar).finish);
        assert_eq!(tl.record(c).start, SimTime(20_000));
        assert_eq!(tl.makespan, SimDuration::from_micros(30));
    }

    #[test]
    fn forward_only_dependencies_enforced() {
        let mut e = Engine::new();
        let err = e
            .add_task(task(None, 0, vec![TaskId(7)], "bad"))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::UnknownDependency {
                task: 0,
                dep: TaskId(7)
            }
        );
    }

    #[test]
    fn unknown_resource_rejected() {
        let mut e = Engine::new();
        let err = e
            .add_task(task(Some(ResourceId(3)), 1, vec![], "bad"))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownResource { .. }));
    }

    #[test]
    fn fifo_arbitration_prefers_earlier_ready_tasks() {
        let mut e = Engine::new();
        let r = e.add_resource("r");
        let gate = e.add_task(task(None, 5, vec![], "gate")).unwrap();
        // w becomes ready at t=5, but q (ready at t=0) must win the resource.
        let q = e.add_task(task(Some(r), 50, vec![], "q")).unwrap();
        let w = e.add_task(task(Some(r), 10, vec![gate], "w")).unwrap();
        let tl = e.run();
        assert_eq!(tl.record(q).start, SimTime::ZERO);
        assert_eq!(tl.record(w).start, SimTime(50_000));
        assert_eq!(tl.record(w).ready, SimTime(5_000));
    }

    #[test]
    fn from_records_sorts_renumbers_and_spans() {
        let recs = vec![
            TaskRecord::measured(Some(ResourceId(1)), SimTime(50), SimTime(90), "late"),
            TaskRecord::measured(None, SimTime(0), SimTime(10), "early"),
            TaskRecord::measured(Some(ResourceId(0)), SimTime(5), SimTime(70), "mid"),
        ];
        let tl = Timeline::from_records(recs);
        assert_eq!(tl.makespan, SimDuration(90));
        let labels: Vec<&str> = tl.records.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["early", "mid", "late"]);
        for (i, r) in tl.records.iter().enumerate() {
            assert_eq!(r.task, TaskId(i));
            assert_eq!(r.ready, r.start);
            assert_eq!(r.critical_pred, None);
        }
        // The analysis helpers work on measured records unchanged.
        assert_eq!(tl.resource_busy(ResourceId(0)), SimDuration(65));
        assert!(Timeline::from_records(Vec::new()).records.is_empty());
    }

    #[test]
    fn empty_engine_runs_to_zero_makespan() {
        let tl = Engine::new().run();
        assert_eq!(tl.makespan, SimDuration::ZERO);
        assert!(tl.records.is_empty());
    }

    #[test]
    fn resource_busy_accounting() {
        let mut e = Engine::new();
        let r = e.add_resource("r");
        e.add_task(task(Some(r), 10, vec![], "a")).unwrap();
        let gap = e.add_task(task(None, 100, vec![], "wait")).unwrap();
        e.add_task(task(Some(r), 20, vec![gap], "b")).unwrap();
        let tl = e.run();
        assert_eq!(tl.resource_busy(r), SimDuration::from_micros(30));
        assert!(tl.resource_utilization(r) < 0.5);
    }
}

#[cfg(test)]
mod critical_path_tests {
    use super::*;

    fn task(resource: Option<ResourceId>, us: u64, deps: Vec<TaskId>, label: &str) -> TaskSpec {
        TaskSpec {
            resource,
            duration: SimDuration::from_micros(us),
            deps,
            label: label.into(),
        }
    }

    #[test]
    fn serial_chain_is_its_own_critical_path() {
        let mut e = Engine::new();
        let r = e.add_resource("r");
        let a = e.add_task(task(Some(r), 10, vec![], "a")).unwrap();
        let b = e.add_task(task(Some(r), 10, vec![a], "b")).unwrap();
        let c = e.add_task(task(Some(r), 10, vec![b], "c")).unwrap();
        let tl = e.run();
        assert_eq!(tl.critical_path(), vec![a, b, c]);
    }

    #[test]
    fn resource_wait_shows_up_on_the_path() {
        // Two independent tasks on one resource: the second's critical
        // predecessor is the first (it freed the resource).
        let mut e = Engine::new();
        let r = e.add_resource("r");
        let a = e.add_task(task(Some(r), 10, vec![], "a")).unwrap();
        let b = e.add_task(task(Some(r), 20, vec![], "b")).unwrap();
        let tl = e.run();
        assert_eq!(tl.critical_path(), vec![a, b]);
    }

    #[test]
    fn parallel_branches_pick_the_longer_one() {
        let mut e = Engine::new();
        let r1 = e.add_resource("r1");
        let r2 = e.add_resource("r2");
        let short = e.add_task(task(Some(r1), 5, vec![], "short")).unwrap();
        let long = e.add_task(task(Some(r2), 50, vec![], "long")).unwrap();
        let join = e
            .add_task(task(None, 1, vec![short, long], "join"))
            .unwrap();
        let tl = e.run();
        let path = tl.critical_path();
        assert_eq!(path, vec![long, join]);
        let _ = short;
    }

    #[test]
    fn path_spans_the_whole_makespan() {
        // Pipeline: the path's first task starts at 0 and its last ends at
        // the makespan.
        let mut e = Engine::new();
        let link = e.add_resource("link");
        let part = e.add_resource("p");
        let mut last = None;
        for i in 0..6 {
            let deps = last.into_iter().collect();
            let h = e
                .add_task(task(Some(link), 7, deps, &format!("h{i}")))
                .unwrap();
            let k = e
                .add_task(task(Some(part), 13, vec![h], &format!("k{i}")))
                .unwrap();
            last = Some(k);
        }
        let tl = e.run();
        let path = tl.critical_path();
        let first = tl.record(path[0]);
        let last_rec = tl.record(*path.last().unwrap());
        assert_eq!(first.start, SimTime::ZERO);
        assert_eq!(last_rec.finish - SimTime::ZERO, tl.makespan);
        // Consecutive path entries touch (no unexplained gaps at handoff).
        for w in path.windows(2) {
            assert!(tl.record(w[1]).start >= tl.record(w[0]).finish);
        }
    }

    #[test]
    fn breakdown_aggregates_by_label_prefix() {
        let mut e = Engine::new();
        let r = e.add_resource("r");
        let a = e.add_task(task(Some(r), 10, vec![], "h2d(0)")).unwrap();
        let b = e.add_task(task(Some(r), 30, vec![a], "gemm(0,0)")).unwrap();
        let _c = e.add_task(task(Some(r), 20, vec![b], "gemm(0,1)")).unwrap();
        let tl = e.run();
        let breakdown = tl.critical_path_breakdown();
        assert_eq!(breakdown[0].0, "gemm");
        assert_eq!(breakdown[0].1, SimDuration::from_micros(50));
        assert_eq!(breakdown[1].0, "h2d");
    }

    #[test]
    fn empty_timeline_has_empty_path() {
        let tl = Engine::new().run();
        assert!(tl.critical_path().is_empty());
        assert!(tl.critical_path_breakdown().is_empty());
    }
}
