//! Deterministic fault-decision primitive for chaos testing.
//!
//! Fault injection has to be **reproducible**: the same seed and the same
//! program must fail in exactly the same places on every run, on every
//! thread interleaving, or a chaos test is itself flaky. [`FaultDie`] gives
//! each injection *site* (an arbitrary tuple of integers — stream index,
//! action index, buffer id, ...) its own stateless uniform draw by hashing
//! the seed with the site through a splitmix64 finalizer. No wall clock, no
//! shared RNG state, no ordering dependence: concurrent executors asking
//! about the same site always get the same answer.
//!
//! The `hstreams` crate builds its `FaultPlan` on top of this die; the
//! engine-side models ([`crate::compute`], [`crate::pcie`]) expose the hook
//! points the plan perturbs.

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixing function.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, stateless source of per-site uniform draws. See module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDie {
    seed: u64,
}

impl FaultDie {
    /// A die for `seed`. Two dice with the same seed agree on every site.
    pub fn new(seed: u64) -> FaultDie {
        FaultDie { seed }
    }

    /// The seed this die was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mix `site` into a 64-bit hash under this die's seed.
    pub fn hash(&self, site: &[u64]) -> u64 {
        let mut h = splitmix64(self.seed ^ 0xA076_1D64_78BD_642F);
        for &s in site {
            h = splitmix64(h ^ s);
        }
        h
    }

    /// A uniform draw in `[0, 1)` for `site`.
    pub fn roll(&self, site: &[u64]) -> f64 {
        // 53 high bits -> exactly representable dyadic rational in [0, 1).
        (self.hash(site) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether `site` is selected at probability `rate` (clamped to
    /// `[0, 1]`). `rate >= 1.0` always hits, `rate <= 0.0` never does.
    pub fn hits(&self, site: &[u64], rate: f64) -> bool {
        self.roll(site) < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_site_same_answer() {
        let a = FaultDie::new(42);
        let b = FaultDie::new(42);
        for s in 0..100u64 {
            assert_eq!(a.roll(&[1, s]), b.roll(&[1, s]));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultDie::new(1);
        let b = FaultDie::new(2);
        let agree = (0..1000u64).filter(|&s| a.hits(&[s], 0.5) == b.hits(&[s], 0.5));
        assert!(agree.count() < 650, "seeds should decorrelate the draws");
    }

    #[test]
    fn rolls_are_roughly_uniform() {
        let die = FaultDie::new(7);
        let n = 10_000u64;
        let hits = (0..n).filter(|&s| die.hits(&[3, s], 0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "hit rate {frac}");
    }

    #[test]
    fn rate_extremes_clamp() {
        let die = FaultDie::new(0);
        assert!(die.hits(&[1], 1.0));
        assert!(!die.hits(&[1], 0.0));
        assert!(die.hits(&[1], 2.0));
        assert!(!die.hits(&[1], -1.0));
    }

    #[test]
    fn site_order_matters() {
        let die = FaultDie::new(9);
        assert_ne!(die.hash(&[1, 2]), die.hash(&[2, 1]));
        assert_ne!(die.hash(&[1]), die.hash(&[1, 0]));
    }
}
