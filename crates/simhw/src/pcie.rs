//! PCIe link timing model.
//!
//! The paper's first microbenchmark finding (Fig. 5) is that on the Phi,
//! host→device and device→host transfers **serialize**: the ID case (hd+dh
//! constant) takes constant time, so the two directions share one engine.
//! The model therefore exposes a *duplex policy*: `Serial` (one exclusive
//! channel for both directions — the Phi behaviour) or `Full` (a channel per
//! direction — the GPU-style behaviour, kept for ablation benches).
//!
//! Per-transfer cost is the classic latency + size/bandwidth model. Fig. 5's
//! measured constants (16 × 1 MB ≈ 2.5 ms one way, 32 blocks ≈ 5.2 ms) pin
//! the defaults in [`crate::calibrate`].

use crate::time::SimDuration;

/// Transfer direction over the link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Host to device ("H2D" in the paper's flow diagrams).
    HostToDevice,
    /// Device to host ("D2H").
    DeviceToHost,
}

impl Direction {
    /// Short label used in traces.
    pub fn label(self) -> &'static str {
        match self {
            Direction::HostToDevice => "h2d",
            Direction::DeviceToHost => "d2h",
        }
    }
}

/// Whether the two directions share one physical channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Duplex {
    /// Both directions serialize on one channel (Phi / MPSS behaviour,
    /// paper finding #1).
    Serial,
    /// Each direction has its own channel (idealized full-duplex device).
    Full,
}

/// Timing model of one card's PCIe connection.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkModel {
    /// Fixed per-transfer cost: DMA descriptor setup, doorbell, completion
    /// interrupt.
    pub latency: SimDuration,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Duplex policy.
    pub duplex: Duplex,
}

impl LinkModel {
    /// Construct a model; `bandwidth` is in bytes/second.
    ///
    /// ```
    /// use micsim::{LinkModel, Duplex, SimDuration};
    /// let link = LinkModel::new(SimDuration::from_micros(15), 7.0e9, Duplex::Serial);
    /// // 1 MiB costs the latency plus the bandwidth term.
    /// let t = link.transfer_time(1 << 20);
    /// assert!((t.as_micros_f64() - 164.8).abs() < 1.0);
    /// assert_eq!(link.channels(), 1); // both directions share one channel
    /// ```
    pub fn new(latency: SimDuration, bandwidth: f64, duplex: Duplex) -> LinkModel {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "bandwidth must be positive and finite"
        );
        LinkModel {
            latency,
            bandwidth,
            duplex,
        }
    }

    /// Time for one transfer of `bytes` (direction-independent: the Phi's
    /// DMA engines are symmetric).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            // Zero-byte "transfers" still pay the doorbell round-trip.
            return self.latency;
        }
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Time for one transfer of `bytes` on a degraded link: the bandwidth
    /// term is stretched by `slowdown` (≥ 1.0; values below 1 are treated as
    /// a healthy link). Fault-injection hook — a congested or flaky link
    /// keeps its per-transfer latency but delivers bytes slower.
    pub fn degraded_transfer_time(&self, bytes: u64, slowdown: f64) -> SimDuration {
        if bytes == 0 {
            return self.latency;
        }
        let slowdown = slowdown.max(1.0);
        self.latency + SimDuration::from_secs_f64(bytes as f64 * slowdown / self.bandwidth)
    }

    /// Time to move `blocks` transfers of `block_bytes` back-to-back on one
    /// channel.
    pub fn batch_time(&self, blocks: usize, block_bytes: u64) -> SimDuration {
        self.transfer_time(block_bytes) * blocks as u64
    }

    /// Number of independent channels this link exposes to the arbiter.
    pub fn channels(&self) -> usize {
        match self.duplex {
            Duplex::Serial => 1,
            Duplex::Full => 2,
        }
    }

    /// Channel index a transfer in `dir` uses.
    pub fn channel_for(&self, dir: Direction) -> usize {
        match self.duplex {
            Duplex::Serial => 0,
            Duplex::Full => match dir {
                Direction::HostToDevice => 0,
                Direction::DeviceToHost => 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(duplex: Duplex) -> LinkModel {
        LinkModel::new(SimDuration::from_micros(15), 7.0e9, duplex)
    }

    #[test]
    fn transfer_time_is_latency_plus_bandwidth_term() {
        let l = link(Duplex::Serial);
        let t = l.transfer_time(1 << 20);
        // 15us + 1MiB / 7GB/s ≈ 15 + 149.8 us
        let us = t.as_micros_f64();
        assert!((us - 164.8).abs() < 1.0, "got {us} us");
    }

    #[test]
    fn zero_bytes_still_costs_latency() {
        let l = link(Duplex::Serial);
        assert_eq!(l.transfer_time(0), SimDuration::from_micros(15));
    }

    #[test]
    fn batch_scales_linearly() {
        let l = link(Duplex::Serial);
        let one = l.transfer_time(1 << 20);
        assert_eq!(l.batch_time(16, 1 << 20), one * 16);
    }

    #[test]
    fn fig5_calibration_point() {
        // 16 x 1 MB one-way ≈ 2.5 ms; 32 blocks ≈ 5.2 ms (paper Fig. 5).
        let l = link(Duplex::Serial);
        let one_way = l.batch_time(16, 1 << 20).as_millis_f64();
        let both = l.batch_time(32, 1 << 20).as_millis_f64();
        assert!((one_way - 2.5).abs() < 0.3, "one-way {one_way} ms");
        assert!((both - 5.2).abs() < 0.4, "both {both} ms");
    }

    #[test]
    fn duplex_channel_mapping() {
        let serial = link(Duplex::Serial);
        assert_eq!(serial.channels(), 1);
        assert_eq!(serial.channel_for(Direction::HostToDevice), 0);
        assert_eq!(serial.channel_for(Direction::DeviceToHost), 0);

        let full = link(Duplex::Full);
        assert_eq!(full.channels(), 2);
        assert_eq!(full.channel_for(Direction::HostToDevice), 0);
        assert_eq!(full.channel_for(Direction::DeviceToHost), 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        LinkModel::new(SimDuration::ZERO, 0.0, Duplex::Serial);
    }

    #[test]
    fn direction_labels() {
        assert_eq!(Direction::HostToDevice.label(), "h2d");
        assert_eq!(Direction::DeviceToHost.label(), "d2h");
    }
}
