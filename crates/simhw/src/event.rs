//! The discrete-event queue.
//!
//! A deterministic priority queue of `(time, sequence, payload)` entries.
//! Events at the same simulated instant pop in insertion order (FIFO
//! tie-break), which makes every simulation run reproducible regardless of
//! payload contents.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Monotone sequence number used for FIFO tie-breaking at equal timestamps.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct EventSeq(pub u64);

struct Entry<T> {
    at: SimTime,
    seq: EventSeq,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, and invert
        // the sequence comparison to get FIFO among equal timestamps.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past is always a simulator bug, and failing fast beats silently
    /// reordering history.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventSeq {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={:?} now={:?}",
            at,
            self.now
        );
        let seq = EventSeq(self.next_seq);
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        seq
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue went backwards");
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(42), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), ());
        q.schedule(SimTime(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(5));
        q.pop();
        assert_eq!(q.now(), SimTime(9));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime(9), "clock holds after drain");
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(3), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7_000)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(40), 4);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t, v), (SimTime(10), 1));
        // Schedule between the popped event and the pending one.
        q.schedule(SimTime(20), 2);
        q.schedule(SimTime(30), 3);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(rest, vec![2, 3, 4]);
    }
}
