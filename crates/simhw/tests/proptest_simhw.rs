//! Property-based tests of the simulation substrate.

use micsim::compute::{ComputeModel, KernelInvocation, KernelProfile, SmtScaling};
use micsim::device::DeviceSpec;
use micsim::engine::{Engine, ResourceId, TaskId, TaskSpec};
use micsim::event::EventQueue;
use micsim::partition::PartitionPlan;
use micsim::pcie::{Duplex, LinkModel};
use micsim::time::{SimDuration, SimTime};
use micsim::trace::{intersect, merge_intervals, total_length, Interval};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events pop in non-decreasing time order, FIFO at equal times.
    #[test]
    fn event_queue_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(id > lid, "FIFO at equal timestamps");
                }
            }
            last = Some((t, id));
        }
    }

    /// Any random forward DAG over shared resources simulates with
    /// well-formed records: start ≥ ready, finish = start + duration,
    /// makespan = max finish, and per-resource busy ≤ makespan.
    #[test]
    fn engine_records_are_well_formed(
        n_res in 1usize..5,
        specs in proptest::collection::vec((0usize..5, 0u64..500, proptest::collection::vec(any::<proptest::sample::Index>(), 0..3)), 1..60)
    ) {
        let mut engine = Engine::new();
        let resources: Vec<ResourceId> =
            (0..n_res).map(|i| engine.add_resource(format!("r{i}"))).collect();
        let mut durations = Vec::new();
        for (i, (res, dur, dep_idx)) in specs.iter().enumerate() {
            let deps: Vec<TaskId> = if i == 0 {
                vec![]
            } else {
                dep_idx.iter().map(|d| TaskId(d.index(i))).collect()
            };
            let resource = if *res == 0 { None } else { Some(resources[(res - 1) % n_res]) };
            engine
                .add_task(TaskSpec {
                    resource,
                    duration: SimDuration::from_nanos(*dur),
                    deps,
                    label: format!("t{i}"),
                })
                .unwrap();
            durations.push(*dur);
        }
        let timeline = engine.run();
        let mut max_finish = SimTime::ZERO;
        for r in &timeline.records {
            prop_assert!(r.start >= r.ready);
            prop_assert_eq!(
                (r.finish - r.start).nanos(),
                durations[r.task.0]
            );
            max_finish = max_finish.max(r.finish);
        }
        prop_assert_eq!(timeline.makespan, max_finish - SimTime::ZERO);
        for &r in &resources {
            prop_assert!(timeline.resource_busy(r) <= timeline.makespan);
        }
    }

    /// The critical path of any DAG starts at t=0, ends at the makespan,
    /// and never has a gap a predecessor doesn't explain.
    #[test]
    fn critical_path_spans_makespan(
        n_res in 1usize..4,
        specs in proptest::collection::vec((0usize..4, 1u64..400, proptest::collection::vec(any::<proptest::sample::Index>(), 0..3)), 1..40)
    ) {
        let mut engine = Engine::new();
        let resources: Vec<ResourceId> =
            (0..n_res).map(|i| engine.add_resource(format!("r{i}"))).collect();
        for (i, (res, dur, dep_idx)) in specs.iter().enumerate() {
            let deps: Vec<TaskId> = if i == 0 {
                vec![]
            } else {
                dep_idx.iter().map(|d| TaskId(d.index(i))).collect()
            };
            let resource = if *res == 0 { None } else { Some(resources[(res - 1) % n_res]) };
            engine
                .add_task(TaskSpec {
                    resource,
                    duration: SimDuration::from_nanos(*dur),
                    deps,
                    label: format!("t{i}"),
                })
                .unwrap();
        }
        let tl = engine.run();
        let path = tl.critical_path();
        prop_assert!(!path.is_empty());
        prop_assert_eq!(tl.records[path[0].0].start, SimTime::ZERO);
        prop_assert_eq!(
            tl.records[path.last().unwrap().0].finish - SimTime::ZERO,
            tl.makespan
        );
        for w in path.windows(2) {
            // Each hop is explained: the successor started no earlier than
            // the predecessor finished.
            prop_assert!(tl.records[w[1].0].start >= tl.records[w[0].0].finish);
        }
    }

    /// Tasks sharing one exclusive resource never overlap in time.
    #[test]
    fn exclusive_resource_never_double_booked(
        durs in proptest::collection::vec(1u64..300, 2..40)
    ) {
        let mut engine = Engine::new();
        let r = engine.add_resource("r");
        for (i, d) in durs.iter().enumerate() {
            engine
                .add_task(TaskSpec {
                    resource: Some(r),
                    duration: SimDuration::from_nanos(*d),
                    deps: vec![],
                    label: format!("t{i}"),
                })
                .unwrap();
        }
        let timeline = engine.run();
        let mut spans: Vec<(u64, u64)> = timeline
            .records
            .iter()
            .map(|r| (r.start.nanos(), r.finish.nanos()))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
        // Work-conserving: total busy equals sum of durations and the
        // resource never idles (all ready at t=0).
        prop_assert_eq!(timeline.makespan.nanos(), durs.iter().sum::<u64>());
    }

    /// Partition plans cover every usable thread exactly once, for any
    /// device geometry and partition count.
    #[test]
    fn partition_plans_cover_exactly(
        cores in 1usize..64,
        tpc in 1usize..5,
        count_seed in any::<proptest::sample::Index>()
    ) {
        let dev = DeviceSpec::tiny(cores, tpc);
        let total = dev.usable_threads();
        let count = count_seed.index(total) + 1;
        let plan = PartitionPlan::equal_split(&dev, count).unwrap();
        let mut covered = vec![false; total];
        #[allow(clippy::needless_range_loop)]
        for p in &plan.partitions {
            for t in p.first_thread..p.first_thread + p.threads {
                prop_assert!(!covered[t], "thread {t} assigned twice");
                covered[t] = true;
            }
            // cores_spanned consistent with the thread range.
            let first_core = p.first_thread / tpc;
            let last_core = (p.first_thread + p.threads - 1) / tpc;
            prop_assert_eq!(p.cores_spanned, last_core - first_core + 1);
        }
        prop_assert!(covered.into_iter().all(|c| c), "all threads covered");
    }

    /// Core-alignment theorem: a plan has no core sharing iff the partition
    /// count divides the usable core count.
    #[test]
    fn alignment_iff_divides_cores(count in 1usize..=56) {
        let dev = DeviceSpec::phi_31sp();
        let plan = PartitionPlan::equal_split(&dev, count).unwrap();
        prop_assert_eq!(!plan.has_core_sharing(), 56 % count == 0);
    }

    /// Interval algebra: |A ∩ B| ≤ min(|A|, |B|), and merge is idempotent.
    #[test]
    fn interval_algebra(raw in proptest::collection::vec((0u64..1000, 0u64..100), 0..40)) {
        let to_iv = |v: &[(u64, u64)]| -> Vec<Interval> {
            v.iter()
                .map(|&(s, l)| Interval { start: SimTime(s), end: SimTime(s + l) })
                .collect()
        };
        let half = raw.len() / 2;
        let a = merge_intervals(to_iv(&raw[..half]));
        let b = merge_intervals(to_iv(&raw[half..]));
        prop_assert_eq!(merge_intervals(a.clone()), a.clone());
        let both = intersect(&a, &b);
        prop_assert!(total_length(&both) <= total_length(&a).max(SimDuration::ZERO));
        prop_assert!(total_length(&both) <= total_length(&b).max(SimDuration::ZERO));
    }

    /// Merge produces a sorted, pairwise-disjoint set that conserves
    /// covered length: re-merging any subset union never exceeds the whole.
    #[test]
    fn merge_output_sorted_disjoint(raw in proptest::collection::vec((0u64..1000, 0u64..100), 0..60)) {
        let ivs: Vec<Interval> = raw
            .iter()
            .map(|&(s, l)| Interval { start: SimTime(s), end: SimTime(s + l) })
            .collect();
        let merged = merge_intervals(ivs.clone());
        for iv in &merged {
            prop_assert!(iv.end > iv.start, "degenerate interval survived: {iv:?}");
        }
        for w in merged.windows(2) {
            prop_assert!(w[0].end < w[1].start, "not disjoint/sorted: {w:?}");
        }
        // Every input instant is covered by the merge.
        for iv in &ivs {
            if iv.end > iv.start {
                prop_assert!(
                    merged.iter().any(|m| m.start <= iv.start && iv.end <= m.end),
                    "{iv:?} not covered by {merged:?}"
                );
            }
        }
        // Covered length never exceeds the raw sum.
        prop_assert!(total_length(&merged) <= ivs.iter().map(|iv| iv.end - iv.start).sum());
    }

    /// Intersection commutes, is bounded by both operands, and
    /// self-intersection is the identity on merged sets.
    #[test]
    fn intersect_commutes_and_bounds(raw in proptest::collection::vec((0u64..1000, 0u64..100), 0..60)) {
        let to_iv = |v: &[(u64, u64)]| -> Vec<Interval> {
            v.iter()
                .map(|&(s, l)| Interval { start: SimTime(s), end: SimTime(s + l) })
                .collect()
        };
        let half = raw.len() / 2;
        let a = merge_intervals(to_iv(&raw[..half]));
        let b = merge_intervals(to_iv(&raw[half..]));
        let ab = intersect(&a, &b);
        let ba = intersect(&b, &a);
        prop_assert_eq!(&ab, &ba, "intersection must commute");
        prop_assert!(total_length(&ab) <= total_length(&a));
        prop_assert!(total_length(&ab) <= total_length(&b));
        prop_assert_eq!(intersect(&a, &a), a.clone(), "self-intersection is identity");
        // The intersection of disjoint sorted sets is itself disjoint and
        // sorted (safe input for total_length).
        prop_assert_eq!(merge_intervals(ab.clone()), ab);
    }

    /// Link model: transfer time is monotone in bytes and batch time is
    /// exactly additive.
    #[test]
    fn link_monotone_and_additive(a in 0u64..1_000_000, b in 0u64..1_000_000, n in 1usize..20) {
        let link = LinkModel::new(SimDuration::from_micros(15), 7.0e9, Duplex::Serial);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        prop_assert_eq!(link.batch_time(n, a), link.transfer_time(a) * n as u64);
    }

    /// Compute model: capacity is monotone in thread count (fixed span),
    /// and kernel time is monotone decreasing in capacity.
    #[test]
    fn capacity_monotone_in_threads(threads in 1usize..16, extra in 1usize..8) {
        let model = ComputeModel {
            launch_overhead: SimDuration::from_micros(60),
            smt: SmtScaling::default(),
            core_sharing_factor: 0.5,
            threads_per_core: 4,
        };
        let span = |t: usize| micsim::partition::Partition {
            index: 0,
            first_thread: 0,
            threads: t,
            shares_core: false,
            cores_spanned: t.div_ceil(4),
        };
        let small = model.partition_capacity(&span(threads));
        let large = model.partition_capacity(&span(threads + extra));
        prop_assert!(large >= small, "{large} >= {small}");

        let profile = KernelProfile::streaming("k", 1e9);
        let inv = KernelInvocation { profile: &profile, work: 1e9 };
        let t_small = model.kernel_time(&inv, &span(threads)).unwrap();
        let t_large = model.kernel_time(&inv, &span(threads + extra)).unwrap();
        prop_assert!(t_large <= t_small);
    }
}
