//! Minimal offline stand-in for the `rand` crate.
//!
//! Covers the surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open
//! ranges. The generator is SplitMix64 — deterministic per seed with good
//! 64-bit avalanche — rather than the real `StdRng`'s ChaCha12; every test
//! in the workspace derives its expected values from the same generated
//! data, so the distribution swap is observationally safe.

/// Types that can be built from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Construct a deterministic generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a random generator.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample using `rng`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Standard generators.
pub mod rngs {
    /// The workspace's deterministic generator (SplitMix64; see crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform bits through f64 keep the f32 result unbiased.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
        (v as f32).min(f32_prev(self.end))
    }
}

// No SampleRange<f64> impl: float literals in `gen_range(-0.5..0.5)` must
// infer f32 from context, and a second float impl would push inference to
// the f64 literal default instead.

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample<R: Rng>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample<R: Rng>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

/// Largest f32 strictly below `x` (keeps half-open ranges half-open after
/// the f64→f32 rounding above).
fn f32_prev(x: f32) -> f32 {
    if x.is_finite() {
        f32::from_bits(if x > 0.0 {
            x.to_bits() - 1
        } else {
            x.to_bits() + 1
        })
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&x), "{x}");
        }
    }

    #[test]
    fn int_range_covers() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
