//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(..)]` and `arg in strategy`
//! parameters, integer range strategies, tuple strategies,
//! [`collection::vec`], [`any`] over [`sample::Index`], and the
//! `prop_assert*` family. Each property runs `cases` random inputs drawn
//! from a generator seeded deterministically from the test's name, so
//! failures reproduce on re-run. There is no shrinking: a failure reports
//! the case number and the assertion message.

use std::fmt;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by a `prop_assert*` macro inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// The deterministic generator driving each property (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name, deterministically.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sample space");
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Types with a canonical strategy, usable via [`any`].
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bounds for [`vec()`].
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of `size`-many values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.min < self.size.max_exclusive, "empty size range");
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Positional sampling helpers.
pub mod sample {
    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `0..len`; panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl super::Arbitrary for Index {
        fn arbitrary(rng: &mut super::TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Declare property tests. Each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __cfg.cases, e
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside a property body (reports the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a == __b, $($fmt)*);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 5u64..=6) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y == 5 || y == 6);
        }

        #[test]
        fn vecs_respect_size(v in crate::collection::vec(0u64..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 100, "x = {}", x);
            }
        }

        #[test]
        fn tuples_and_index(t in (0usize..4, any::<crate::sample::Index>())) {
            prop_assert!(t.0 < 4);
            prop_assert!(t.1.index(10) < 10);
            prop_assert_eq!(t.1.index(1), 0);
        }
    }

    #[test]
    fn failures_report_case_number() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(5))]
                #[allow(unused)]
                fn always_fails(x in 0usize..10) {
                    prop_assert!(false, "boom {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("case 1/5"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
