//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with
//! crossbeam's semantics where this workspace relies on them: both ends are
//! `Send + Sync + Clone` (MPMC), `recv` blocks until a message arrives or
//! every sender is dropped, and `send` fails once every receiver is gone.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are dropped.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crossbeam, Debug does not require `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Push a message; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Pop the next message, blocking while the channel is empty and at
        /// least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).expect("channel lock");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.queue.lock().expect("channel lock").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.queue.lock().expect("channel lock").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().expect("channel lock");
            state.senders -= 1;
            let disconnect = state.senders == 0;
            drop(state);
            if disconnect {
                // Wake blocked receivers so they observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.queue.lock().expect("channel lock").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            let t = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn multi_producer_multi_consumer() {
            let (tx, rx) = unbounded();
            let producers: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for j in 0..100 {
                            tx.send(i * 100 + j).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut n = 0usize;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            drop(rx);
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 400);
        }
    }
}
