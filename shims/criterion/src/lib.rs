//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking surface this workspace uses — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple harness:
//! each benchmark is warmed up, then timed over `sample_size` samples whose
//! batch size targets a fixed per-sample duration; the reported figure is
//! the median per-iteration time, printed as
//! `name                time: [<median>]  (min <..>, max <..>)`.
//!
//! `CRITERION_SAMPLE_MS` and `CRITERION_WARMUP_MS` override the per-sample
//! and warmup budgets (milliseconds) for quicker smoke runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_millis(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// A per-iteration measurement result, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// Median across samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    estimate: Option<Estimate>,
}

impl Bencher {
    /// Measure `f`, called repeatedly in adaptively sized batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup_budget = env_millis("CRITERION_WARMUP_MS", 300);
        let sample_budget = env_millis("CRITERION_SAMPLE_MS", 60);
        // Warmup, and estimate the per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warmup_budget {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((sample_budget.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        self.estimate = Some(Estimate {
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().expect("samples nonempty"),
        });
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        estimate: None,
    };
    f(&mut b);
    match b.estimate {
        Some(e) => println!(
            "{name:<48} time: [{}]  (min {}, max {})",
            format_ns(e.median_ns),
            format_ns(e.min_ns),
            format_ns(e.max_ns)
        ),
        None => println!("{name:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// Top-level benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo-bench passes `--bench` plus optional name filters; keep the
        // first free-standing argument as a substring filter like criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.enabled(name) {
            run_one(name, 20, &mut f);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into().0);
        if self.criterion.enabled(&full) {
            run_one(&full, self.sample_size, &mut f);
        }
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (formatting no-op in this shim).
    pub fn finish(self) {}
}

/// A benchmark name, optionally parameterized.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Group benchmark functions under one registry entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("CRITERION_WARMUP_MS", "5");
        std::env::set_var("CRITERION_SAMPLE_MS", "2");
        let mut b = Bencher {
            samples: 5,
            estimate: None,
        };
        b.iter(|| black_box(2u64).pow(10));
        let e = b.estimate.expect("estimate recorded");
        assert!(e.min_ns <= e.median_ns && e.median_ns <= e.max_ns);
        assert!(e.median_ns > 0.0);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 32).0, "f/32");
    }
}
