//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()` /
//! `read()` / `write()` return guards directly instead of `LockResult`s.
//! parking_lot has no lock poisoning; here a poisoned std lock panics,
//! which is equivalent for this workspace (a poisoning panic has already
//! failed the test or run that caused it).

use std::fmt;
use std::ops::{Deref, DerefMut};

// ----- Mutex ---------------------------------------------------------------

/// Mutual exclusion primitive (see module docs).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|e| panic!("poisoned mutex: {e}"))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0
                .lock()
                .unwrap_or_else(|e| panic!("poisoned mutex: {e}")),
        ))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

// ----- Condvar -------------------------------------------------------------

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(|e| panic!("poisoned mutex: {e}")),
        );
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

// ----- RwLock --------------------------------------------------------------

/// Reader-writer lock (see module docs).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|e| panic!("poisoned rwlock: {e}"))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(
            self.0
                .read()
                .unwrap_or_else(|e| panic!("poisoned rwlock: {e}")),
        )
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(
            self.0
                .write()
                .unwrap_or_else(|e| panic!("poisoned rwlock: {e}")),
        )
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
    }
}
